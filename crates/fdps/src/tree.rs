//! Barnes–Hut octree with monopole moments (paper §3.4: "particles are
//! assigned to a tree structure and the calculation cost becomes O(N log N)
//! instead of O(N^2)").
//!
//! The tree is built over Morton-sorted particles so each node is a
//! contiguous index range. Nodes carry the monopole (total mass + centre of
//! mass), a tight bounding box, and — when smoothing lengths are supplied —
//! the maximum search radius of their subtree, which powers the
//! gather/scatter neighbor search SPH needs.

use crate::bbox::BBox;
use crate::morton;
use crate::vec3::Vec3;

/// One octree node.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Range into [`Tree::order`] of the particles in this subtree.
    pub start: u32,
    pub end: u32,
    /// Index of the first child in [`Tree::nodes`]; children are contiguous.
    pub child_start: u32,
    pub child_count: u8,
    /// Monopole: total mass and centre of mass.
    pub mass: f64,
    pub com: Vec3,
    /// Tight bounding box of the subtree's particles.
    pub bbox: BBox,
    /// Maximum smoothing length in the subtree (0 when none supplied).
    pub h_max: f64,
}

impl TreeNode {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.child_count == 0
    }

    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Geometric size used by the opening criterion: the longest edge of the
    /// tight bounding box.
    #[inline]
    pub fn size(&self) -> f64 {
        self.bbox.max_extent()
    }
}

/// An octree over externally owned particle arrays.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Particle indices in Morton order; nodes reference ranges of this.
    pub order: Vec<u32>,
    pub nodes: Vec<TreeNode>,
    /// Global bounding cube used for Morton quantization.
    pub cube: BBox,
    n_leaf: usize,
}

/// Root node index.
pub const ROOT: usize = 0;

impl Tree {
    /// Build over `pos`/`mass`, splitting nodes larger than `n_leaf`.
    pub fn build(pos: &[Vec3], mass: &[f64], n_leaf: usize) -> Tree {
        Self::build_with_h(pos, mass, None, n_leaf)
    }

    /// Build carrying per-particle search radii `h` for neighbor queries.
    pub fn build_with_h(pos: &[Vec3], mass: &[f64], h: Option<&[f64]>, n_leaf: usize) -> Tree {
        assert_eq!(pos.len(), mass.len(), "tree: pos/mass length mismatch");
        if let Some(h) = h {
            assert_eq!(pos.len(), h.len(), "tree: pos/h length mismatch");
        }
        assert!(n_leaf >= 1, "tree: n_leaf must be >= 1");

        let mut bbox = BBox::of_points(pos);
        if bbox.is_empty() {
            bbox = BBox::new(Vec3::ZERO, Vec3::ZERO);
        }
        // Quantize in a cube so octants are cubical.
        let half = (bbox.max_extent() * 0.5).max(f64::MIN_POSITIVE);
        let cube = BBox::cube(bbox.center(), half * (1.0 + 1e-12) + 1e-300);

        let mut keyed: Vec<(u64, u32)> = pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (morton::key(p, &cube), i as u32))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();

        let mut tree = Tree {
            order,
            nodes: Vec::with_capacity(pos.len() / n_leaf.max(1) * 2 + 16),
            cube,
            n_leaf,
        };
        tree.nodes.push(TreeNode {
            start: 0,
            end: pos.len() as u32,
            child_start: 0,
            child_count: 0,
            mass: 0.0,
            com: Vec3::ZERO,
            bbox: BBox::empty(),
            h_max: 0.0,
        });
        tree.split_node(ROOT, 0, &keys);
        tree.compute_moments(ROOT, pos, mass, h);
        tree
    }

    fn split_node(&mut self, node: usize, level: u32, keys: &[u64]) {
        let (start, end) = {
            let n = &self.nodes[node];
            (n.start as usize, n.end as usize)
        };
        if end - start <= self.n_leaf || level >= morton::BITS {
            return; // leaf
        }
        // Partition the sorted key range by the 3-bit digit at this level.
        let child_start = self.nodes.len() as u32;
        let mut boundaries = [start; 9];
        let mut cursor = start;
        for d in 0..8usize {
            while cursor < end && morton::digit(keys[cursor], level) == d {
                cursor += 1;
            }
            boundaries[d + 1] = cursor;
        }
        debug_assert_eq!(boundaries[8], end, "digit partition must cover range");

        let mut created = 0u8;
        for d in 0..8usize {
            let (s, e) = (boundaries[d], boundaries[d + 1]);
            if s == e {
                continue; // skip empty octants
            }
            self.nodes.push(TreeNode {
                start: s as u32,
                end: e as u32,
                child_start: 0,
                child_count: 0,
                mass: 0.0,
                com: Vec3::ZERO,
                bbox: BBox::empty(),
                h_max: 0.0,
            });
            created += 1;
        }
        self.nodes[node].child_start = child_start;
        self.nodes[node].child_count = created;
        for c in 0..created as usize {
            self.split_node(child_start as usize + c, level + 1, keys);
        }
    }

    fn compute_moments(&mut self, node: usize, pos: &[Vec3], mass: &[f64], h: Option<&[f64]>) {
        let (start, end, child_start, child_count) = {
            let n = &self.nodes[node];
            (
                n.start as usize,
                n.end as usize,
                n.child_start as usize,
                n.child_count as usize,
            )
        };
        let mut m = 0.0;
        let mut com = Vec3::ZERO;
        let mut bbox = BBox::empty();
        let mut h_max = 0.0f64;
        if child_count == 0 {
            for &pi in &self.order[start..end] {
                let pi = pi as usize;
                m += mass[pi];
                com += pos[pi] * mass[pi];
                bbox.extend(pos[pi]);
                if let Some(h) = h {
                    h_max = h_max.max(h[pi]);
                }
            }
        } else {
            for c in child_start..child_start + child_count {
                self.compute_moments(c, pos, mass, h);
                let ch = &self.nodes[c];
                m += ch.mass;
                com += ch.com * ch.mass;
                bbox.merge(&ch.bbox);
                h_max = h_max.max(ch.h_max);
            }
        }
        let n = &mut self.nodes[node];
        n.mass = m;
        n.com = if m > 0.0 {
            com / m
        } else {
            // Massless subtree (e.g. tracer particles): use the box centre.
            if bbox.is_empty() {
                Vec3::ZERO
            } else {
                bbox.center()
            }
        };
        n.bbox = bbox;
        n.h_max = h_max;
    }

    /// Refresh the tree in place for updated particle positions/masses:
    /// keep the Morton ordering and node topology from the last full build
    /// and only re-accumulate the node moments (monopole, tight bounding
    /// box, `h_max`).
    ///
    /// This is the cross-substep reuse path of hierarchical block
    /// timesteps: between force evaluations only a small active subset
    /// moves appreciably, so re-sorting and re-splitting the octree every
    /// substep is wasted work — moments are an O(N) bottom-up pass with
    /// **zero heap allocation**. The node ranges stay tied to the *old*
    /// Morton partition, so bounding boxes of sibling nodes may start to
    /// overlap as particles drift; walks stay correct (boxes always contain
    /// their particles) but the MAC gets gradually looser, which is why
    /// drivers re-[`Tree::build`] on base steps or when a drift bound
    /// trips.
    ///
    /// The particle count must match the build; grown or shrunk particle
    /// sets need a full rebuild.
    pub fn refresh(&mut self, pos: &[Vec3], mass: &[f64]) {
        self.refresh_with_h(pos, mass, None);
    }

    /// [`Tree::refresh`] carrying per-particle search radii, matching
    /// [`Tree::build_with_h`].
    pub fn refresh_with_h(&mut self, pos: &[Vec3], mass: &[f64], h: Option<&[f64]>) {
        assert_eq!(pos.len(), mass.len(), "tree: pos/mass length mismatch");
        if let Some(h) = h {
            assert_eq!(pos.len(), h.len(), "tree: pos/h length mismatch");
        }
        assert_eq!(
            pos.len(),
            self.len(),
            "tree: refresh requires an unchanged particle count"
        );
        self.compute_moments(ROOT, pos, mass, h);
    }

    /// Root node.
    pub fn root(&self) -> &TreeNode {
        &self.nodes[ROOT]
    }

    /// Number of particles indexed by the tree.
    pub fn len(&self) -> usize {
        self.root().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Particle indices (into the original arrays) of a leaf's range.
    pub fn leaf_particles(&self, node: &TreeNode) -> &[u32] {
        &self.order[node.start as usize..node.end as usize]
    }

    /// Collect all particle indices within `r` of `p` (gather) or within a
    /// particle's own stored search radius of `p` (scatter); the caller
    /// passes candidate filtering. Appends to `out`.
    ///
    /// Caching contract: the traversal order is a fixed depth-first walk
    /// and the pruning bound `max(r, h_max)` is monotone in `r`, so for
    /// `r' <= r` the candidate list is an *order-preserving sublist* of
    /// the list at `r`. Callers may therefore cache one wide walk and
    /// re-filter it exactly for any smaller radius — the SPH
    /// smoothing-length iteration relies on this.
    pub fn neighbors_within(&self, p: Vec3, r: f64, out: &mut Vec<u32>) {
        if self.is_empty() {
            return;
        }
        self.neighbor_rec(ROOT, p, r, out);
    }

    fn neighbor_rec(&self, node: usize, p: Vec3, r: f64, out: &mut Vec<u32>) {
        let n = &self.nodes[node];
        // Scatter-aware bound: a particle inside this node can reach `p`
        // within max(r, its own h) — the subtree bound is h_max.
        let reach = r.max(n.h_max);
        if n.bbox.is_empty() || n.bbox.dist2_to_point(p) > reach * reach {
            return;
        }
        if n.is_leaf() {
            out.extend_from_slice(self.leaf_particles(n));
        } else {
            for c in 0..n.child_count as usize {
                self.neighbor_rec(n.child_start as usize + c, p, r, out);
            }
        }
    }

    /// Indices of leaves with at most `n_group` particles, walking down from
    /// the root: FDPS's i-particle groups sharing one interaction list
    /// (paper §5.2.4's `n_g`).
    pub fn groups(&self, n_group: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![ROOT];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i];
            if n.len() <= n_group || n.is_leaf() {
                out.push(i);
            } else {
                for c in 0..n.child_count as usize {
                    stack.push(n.child_start as usize + c);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> (Vec<Vec3>, Vec<f64>) {
        let mut pos = Vec::new();
        let mut mass = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    pos.push(Vec3::new(i as f64, j as f64, k as f64));
                    mass.push(1.0 + (i + j + k) as f64 * 0.1);
                }
            }
        }
        (pos, mass)
    }

    #[test]
    fn root_moments_match_totals() {
        let (pos, mass) = grid(4);
        let tree = Tree::build(&pos, &mass, 8);
        let total: f64 = mass.iter().sum();
        assert!((tree.root().mass - total).abs() < 1e-9);
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= total;
        assert!((tree.root().com - com).norm() < 1e-9);
        assert_eq!(tree.len(), pos.len());
    }

    #[test]
    fn every_particle_in_exactly_one_leaf() {
        let (pos, mass) = grid(5);
        let tree = Tree::build(&pos, &mass, 4);
        let mut seen = vec![0u32; pos.len()];
        for n in &tree.nodes {
            if n.is_leaf() {
                for &pi in tree.leaf_particles(n) {
                    seen[pi as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn leaves_respect_n_leaf() {
        let (pos, mass) = grid(6);
        let tree = Tree::build(&pos, &mass, 10);
        for n in &tree.nodes {
            if n.is_leaf() {
                assert!(n.len() <= 10 || !n.is_empty());
            }
        }
        // At least: internal nodes must have > n_leaf particles.
        for n in &tree.nodes {
            if !n.is_leaf() {
                assert!(n.len() > 10);
            }
        }
    }

    #[test]
    fn child_ranges_partition_parent() {
        let (pos, mass) = grid(4);
        let tree = Tree::build(&pos, &mass, 2);
        for n in &tree.nodes {
            if n.is_leaf() {
                continue;
            }
            let mut covered = 0;
            let mut cursor = n.start;
            for c in 0..n.child_count as usize {
                let ch = &tree.nodes[n.child_start as usize + c];
                assert_eq!(ch.start, cursor, "children must be contiguous");
                cursor = ch.end;
                covered += ch.len();
            }
            assert_eq!(cursor, n.end);
            assert_eq!(covered, n.len());
        }
    }

    #[test]
    fn neighbor_search_matches_brute_force() {
        let (pos, mass) = grid(6);
        let tree = Tree::build(&pos, &mass, 4);
        let center = Vec3::new(2.3, 2.7, 3.1);
        let r = 1.8;
        let mut found = Vec::new();
        tree.neighbors_within(center, r, &mut found);
        let brute: Vec<u32> = pos
            .iter()
            .enumerate()
            .filter(|(_, p)| (**p - center).norm() <= r)
            .map(|(i, _)| i as u32)
            .collect();
        let mut found_exact: Vec<u32> = found
            .into_iter()
            .filter(|&i| (pos[i as usize] - center).norm() <= r)
            .collect();
        found_exact.sort_unstable();
        assert_eq!(found_exact, brute);
    }

    #[test]
    fn neighbor_lists_shrink_to_ordered_sublists() {
        // Pins `neighbors_within`'s caching contract: the candidate list
        // at any radius r' <= r is an order-preserving sublist of the
        // list at r, so one wide walk can be cached and re-filtered
        // exactly for smaller radii.
        let (pos, mass) = grid(6);
        let h: Vec<f64> = (0..pos.len())
            .map(|i| 0.3 + 0.05 * (i % 5) as f64)
            .collect();
        let tree = Tree::build_with_h(&pos, &mass, Some(&h), 4);
        let center = Vec3::new(2.3, 2.7, 3.1);
        let mut wide = Vec::new();
        tree.neighbors_within(center, 2.6, &mut wide);
        for r in [2.6, 2.0, 1.3, 0.6, 0.1] {
            let mut narrow = Vec::new();
            tree.neighbors_within(center, r, &mut narrow);
            let mut it = wide.iter();
            for s in &narrow {
                assert!(
                    it.any(|w| w == s),
                    "candidate {s} at r={r} missing from (or reordered in) the wide list"
                );
            }
        }
    }

    #[test]
    fn scatter_search_sees_large_h_particles() {
        // One far particle with a huge smoothing length must be returned
        // even for a tiny query radius.
        let pos = vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let h = vec![0.1, 20.0];
        let tree = Tree::build_with_h(&pos, &mass, Some(&h), 1);
        let mut out = Vec::new();
        tree.neighbors_within(Vec3::ZERO, 0.5, &mut out);
        assert!(out.contains(&1), "scatter neighbor with large h missed");
    }

    #[test]
    fn groups_cover_all_particles_without_overlap() {
        let (pos, mass) = grid(5);
        let tree = Tree::build(&pos, &mass, 4);
        let groups = tree.groups(16);
        let mut seen = vec![false; pos.len()];
        for &g in &groups {
            let n = &tree.nodes[g];
            assert!(n.len() <= 16 || n.is_leaf());
            for &pi in tree.leaf_particles_range(n) {
                assert!(!seen[pi as usize], "group overlap");
                seen[pi as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = Tree::build(&[], &[], 4);
        assert!(tree.is_empty());
        let mut out = Vec::new();
        tree.neighbors_within(Vec3::ZERO, 1.0, &mut out);
        assert!(out.is_empty());
        assert!(tree.groups(8).is_empty());

        let tree = Tree::build(&[Vec3::splat(1.0)], &[2.0], 4);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root().mass, 2.0);
        assert_eq!(tree.root().com, Vec3::splat(1.0));
    }

    #[test]
    fn refresh_reaccumulates_moments_without_retopology() {
        let (mut pos, mut mass) = grid(5);
        let mut tree = Tree::build(&pos, &mass, 4);
        let nodes_before: Vec<(u32, u32, u32, u8)> = tree
            .nodes
            .iter()
            .map(|n| (n.start, n.end, n.child_start, n.child_count))
            .collect();
        let order_before = tree.order.clone();
        // Drift every particle a little and perturb the masses.
        for (i, p) in pos.iter_mut().enumerate() {
            *p += Vec3::new(0.01 * i as f64, -0.02, 0.03);
        }
        for m in mass.iter_mut() {
            *m *= 1.5;
        }
        tree.refresh(&pos, &mass);
        // Topology untouched.
        let nodes_after: Vec<(u32, u32, u32, u8)> = tree
            .nodes
            .iter()
            .map(|n| (n.start, n.end, n.child_start, n.child_count))
            .collect();
        assert_eq!(nodes_before, nodes_after);
        assert_eq!(order_before, tree.order);
        // Moments match the updated arrays exactly.
        let total: f64 = mass.iter().sum();
        assert!((tree.root().mass - total).abs() < 1e-9);
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= total;
        assert!((tree.root().com - com).norm() < 1e-9);
        // Every node still bounds its particles.
        for n in &tree.nodes {
            for &pi in tree.leaf_particles_range(n) {
                let p = pos[pi as usize];
                assert!(n.bbox.dist2_to_point(p) <= 1e-12);
            }
        }
        // Internal consistency: parent mass equals the sum of children.
        for n in &tree.nodes {
            if !n.is_leaf() {
                let m: f64 = (0..n.child_count as usize)
                    .map(|c| tree.nodes[n.child_start as usize + c].mass)
                    .sum();
                assert!((n.mass - m).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refreshed_tree_walks_match_a_fresh_build_monopole() {
        // After a small drift the refreshed tree's neighbor search must
        // still find everything a fresh build finds.
        let (mut pos, mass) = grid(6);
        let mut tree = Tree::build(&pos, &mass, 8);
        for (i, p) in pos.iter_mut().enumerate() {
            *p += Vec3::new(0.05 * ((i % 7) as f64 - 3.0), 0.04, -0.03);
        }
        tree.refresh(&pos, &mass);
        let center = Vec3::new(2.3, 2.7, 3.1);
        let r = 1.8;
        let mut found = Vec::new();
        tree.neighbors_within(center, r, &mut found);
        let mut found_exact: Vec<u32> = found
            .into_iter()
            .filter(|&i| (pos[i as usize] - center).norm() <= r)
            .collect();
        found_exact.sort_unstable();
        let brute: Vec<u32> = pos
            .iter()
            .enumerate()
            .filter(|(_, p)| (**p - center).norm() <= r)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(found_exact, brute);
    }

    #[test]
    #[should_panic(expected = "unchanged particle count")]
    fn refresh_rejects_a_changed_particle_count() {
        let (pos, mass) = grid(3);
        let mut tree = Tree::build(&pos, &mass, 4);
        tree.refresh(&pos[..10], &mass[..10]);
    }

    #[test]
    fn coincident_particles_do_not_hang() {
        let pos = vec![Vec3::splat(0.5); 50];
        let mass = vec![1.0; 50];
        let tree = Tree::build(&pos, &mass, 4);
        // All keys identical: recursion must stop at max depth.
        assert_eq!(tree.len(), 50);
        assert!((tree.root().mass - 50.0).abs() < 1e-12);
    }

    impl Tree {
        /// Test helper: particles of a *group* node (same as leaf range).
        fn leaf_particles_range(&self, node: &TreeNode) -> &[u32] {
            &self.order[node.start as usize..node.end as usize]
        }
    }
}
