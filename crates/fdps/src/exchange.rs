//! Particle and ghost exchange (paper §5.2.1).
//!
//! After a domain decomposition, particles migrate to their owning rank via
//! alltoallv — either the flat variant or the 3-D torus variant matching the
//! process grid. For SPH, ranks additionally exchange *ghost* copies of
//! particles near domain surfaces so short-range interactions can be
//! evaluated locally; the traffic grows with the domain surface area, which
//! is why the paper's thin central domains make this phase expensive.

use crate::domain::DomainDecomposition;
use crate::vec3::Vec3;
use mpisim::{Comm, TorusDims};

/// How alltoallv traffic is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Direct pairwise exchange (`p - 1` messages per rank).
    #[default]
    Flat,
    /// Three axis-staged exchanges over the process grid (`O(p^{1/3})`).
    Torus,
}

/// Migrate `particles` so each ends up on the rank owning its position.
/// Returns this rank's new particle set (retained + received).
pub fn exchange_particles<P, F>(
    comm: &Comm,
    dd: &DomainDecomposition,
    particles: Vec<P>,
    pos_of: F,
    routing: Routing,
) -> Vec<P>
where
    P: Send + 'static,
    F: Fn(&P) -> Vec3,
{
    let p = comm.size();
    debug_assert_eq!(dd.len(), p);
    let mut sends: Vec<Vec<P>> = (0..p).map(|_| Vec::new()).collect();
    for part in particles {
        let owner = dd.owner_of(pos_of(&part));
        sends[owner].push(part);
    }
    let recvs = route(comm, dd, sends, routing);
    recvs.into_iter().flatten().collect()
}

/// Exchange ghost copies for short-range interactions. A particle is sent to
/// every remote domain within `reach_of(particle)` of its position, where the
/// reach must cover both gather and scatter requirements (callers typically
/// pass `2 h` plus the global maximum smoothing length margin). Returns the
/// ghosts received from other ranks.
pub fn exchange_ghosts<P, F, G>(
    comm: &Comm,
    dd: &DomainDecomposition,
    particles: &[P],
    pos_of: F,
    reach_of: G,
    routing: Routing,
) -> Vec<P>
where
    P: Clone + Send + 'static,
    F: Fn(&P) -> Vec3,
    G: Fn(&P) -> f64,
{
    let p = comm.size();
    let me = comm.rank();
    // Gather every rank's maximum reach so receivers' gather needs are met:
    // rank r needs ghosts within its own particles' reach of its box.
    let my_max_reach = particles.iter().map(&reach_of).fold(0.0f64, f64::max);
    let all_reach = comm.allgather(my_max_reach);

    let boxes: Vec<_> = (0..p).map(|r| dd.domain_box(r)).collect();
    let mut sends: Vec<Vec<P>> = (0..p).map(|_| Vec::new()).collect();
    for part in particles {
        let x = pos_of(part);
        let own_reach = reach_of(part);
        for r in 0..p {
            if r == me {
                continue;
            }
            // Scatter: this particle influences rank r's particles within
            // its own reach. Gather: rank r's particles reach up to
            // all_reach[r] beyond their box.
            let reach = own_reach.max(all_reach[r]);
            if boxes[r].dist2_to_point(x) <= reach * reach {
                sends[r].push(part.clone());
            }
        }
    }
    let recvs = route(comm, dd, sends, routing);
    recvs.into_iter().flatten().collect()
}

fn route<P: Send + 'static>(
    comm: &Comm,
    dd: &DomainDecomposition,
    sends: Vec<Vec<P>>,
    routing: Routing,
) -> Vec<Vec<P>> {
    match routing {
        Routing::Flat => comm.alltoallv(sends),
        Routing::Torus => {
            let dims = TorusDims::new(dd.nx, dd.ny, dd.nz);
            comm.alltoallv_torus(dims, sends)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use mpisim::World;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[derive(Clone, Debug, PartialEq)]
    struct Pt {
        pos: Vec3,
        id: u64,
        h: f64,
    }

    fn cloud(n: usize, seed: u64) -> Vec<Pt> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Pt {
                pos: Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ),
                id: i as u64,
                h: rng.gen_range(0.02..0.1),
            })
            .collect()
    }

    fn shared_dd(pts: &[Pt], dims: (usize, usize, usize)) -> DomainDecomposition {
        let mut sample: Vec<Vec3> = pts.iter().map(|p| p.pos).collect();
        let global = BBox::of_points(&sample);
        DomainDecomposition::from_samples(dims, &mut sample, global)
    }

    #[test]
    fn all_particles_arrive_at_their_owner() {
        for routing in [Routing::Flat, Routing::Torus] {
            let full = cloud(600, 10);
            let dd = shared_dd(&full, (2, 2, 2));
            let results = World::new(8).run(|c| {
                let mine: Vec<Pt> = full
                    .iter()
                    .skip(c.rank())
                    .step_by(c.size())
                    .cloned()
                    .collect();
                let after = exchange_particles(c, &dd, mine, |p| p.pos, routing);
                for p in &after {
                    assert_eq!(dd.owner_of(p.pos), c.rank(), "misrouted particle");
                }
                after.iter().map(|p| p.id).collect::<Vec<_>>()
            });
            // No particle lost or duplicated.
            let mut ids: Vec<u64> = results.into_iter().flatten().collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..600).collect();
            assert_eq!(ids, expect, "routing {routing:?}");
        }
    }

    #[test]
    fn ghosts_cover_all_cross_domain_neighbors() {
        let full = cloud(400, 11);
        let dd = shared_dd(&full, (2, 2, 1));
        let reach = |p: &Pt| 2.0 * p.h;
        let results = World::new(4).run(|c| {
            let mine: Vec<Pt> = full
                .iter()
                .filter(|p| dd.owner_of(p.pos) == c.rank())
                .cloned()
                .collect();
            let ghosts = exchange_ghosts(c, &dd, &mine, |p| p.pos, reach, Routing::Flat);
            // Every pair (i local, j remote) with |r_ij| < 2*max(h_i, h_j)
            // must be covered: j must appear among our ghosts.
            let ghost_ids: std::collections::HashSet<u64> = ghosts.iter().map(|g| g.id).collect();
            for i in &mine {
                for j in &full {
                    if dd.owner_of(j.pos) == c.rank() {
                        continue;
                    }
                    let d = (i.pos - j.pos).norm();
                    if d < 2.0 * i.h.max(j.h) {
                        assert!(
                            ghost_ids.contains(&j.id),
                            "missing ghost {} needed by local {} (d={d})",
                            j.id,
                            i.id
                        );
                    }
                }
            }
            ghosts.len()
        });
        // Sanity: some ghosts were actually exchanged.
        assert!(results.iter().sum::<usize>() > 0);
    }

    #[test]
    fn ghost_exchange_never_returns_own_particles() {
        let full = cloud(200, 12);
        let dd = shared_dd(&full, (4, 1, 1));
        World::new(4).run(|c| {
            let mine: Vec<Pt> = full
                .iter()
                .filter(|p| dd.owner_of(p.pos) == c.rank())
                .cloned()
                .collect();
            let my_ids: std::collections::HashSet<u64> = mine.iter().map(|p| p.id).collect();
            let ghosts = exchange_ghosts(c, &dd, &mine, |p| p.pos, |p| 2.0 * p.h, Routing::Flat);
            for g in &ghosts {
                assert!(!my_ids.contains(&g.id));
            }
        });
    }

    #[test]
    fn torus_and_flat_exchange_agree() {
        let full = cloud(300, 13);
        let dd = shared_dd(&full, (2, 2, 2));
        let by_routing: Vec<Vec<Vec<u64>>> = [Routing::Flat, Routing::Torus]
            .into_iter()
            .map(|routing| {
                World::new(8).run(|c| {
                    let mine: Vec<Pt> = full
                        .iter()
                        .skip(c.rank())
                        .step_by(c.size())
                        .cloned()
                        .collect();
                    let mut ids: Vec<u64> = exchange_particles(c, &dd, mine, |p| p.pos, routing)
                        .iter()
                        .map(|p| p.id)
                        .collect();
                    ids.sort_unstable();
                    ids
                })
            })
            .collect();
        assert_eq!(by_routing[0], by_routing[1]);
    }
}
