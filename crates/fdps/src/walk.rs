//! Tree traversal producing interaction lists (paper §5.2.2, §5.2.4).
//!
//! FDPS evaluates forces group-wise: particles are grouped into sets of at
//! most `n_g` (the paper tunes `n_g = 2048` on Fugaku, `65536` on Miyabi),
//! one tree walk per group collects the *interaction list* — nearby
//! particles kept individually plus distant nodes accepted as monopole
//! "super-particles" — and the user kernel then evaluates group × list.

use crate::bbox::BBox;
use crate::tree::{Tree, ROOT};
use crate::vec3::Vec3;

/// A distant tree node accepted by the multipole acceptance criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperParticle {
    pub pos: Vec3,
    pub mass: f64,
}

/// The j-side of one group's force evaluation.
#[derive(Debug, Clone, Default)]
pub struct InteractionList {
    /// Indices of individually kept particles (EPJ).
    pub ep: Vec<u32>,
    /// Monopole-aggregated distant nodes (SPJ).
    pub sp: Vec<SuperParticle>,
}

impl InteractionList {
    /// Total entries (the paper's interaction-list length `n_l`).
    pub fn len(&self) -> usize {
        self.ep.len() + self.sp.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ep.is_empty() && self.sp.is_empty()
    }
}

impl Tree {
    /// Walk the tree for a target region and collect the interaction list.
    ///
    /// A node is *opened* (descended into) when `size > theta * dist`, where
    /// `dist` is the distance from the target box to the node's bounding
    /// box — the standard Barnes–Hut opening criterion generalized to group
    /// targets. Opened leaves contribute their particles as EPJ; accepted
    /// nodes contribute their monopole as SPJ.
    pub fn walk_mac(&self, target: &BBox, theta: f64, out: &mut InteractionList) {
        if self.is_empty() {
            return;
        }
        self.walk_mac_rec(ROOT, target, theta * theta, out);
    }

    fn walk_mac_rec(&self, node: usize, target: &BBox, theta2: f64, out: &mut InteractionList) {
        let n = &self.nodes[node];
        if n.bbox.is_empty() {
            return;
        }
        let d2 = target.dist2_to_box(&n.bbox);
        let s = n.size();
        // Accept as monopole when s^2 <= theta^2 d^2 (and the node is not
        // overlapping the target, where d2 = 0 forces opening).
        if d2 > 0.0 && s * s <= theta2 * d2 {
            out.sp.push(SuperParticle {
                pos: n.com,
                mass: n.mass,
            });
            return;
        }
        if n.is_leaf() {
            out.ep.extend_from_slice(self.leaf_particles(n));
        } else {
            for c in 0..n.child_count as usize {
                self.walk_mac_rec(n.child_start as usize + c, target, theta2, out);
            }
        }
    }

    /// Walk for every group of at most `n_group` particles: returns
    /// `(group node index, interaction list)` pairs. The group's target box
    /// is its tight bounding box.
    pub fn interaction_lists(&self, theta: f64, n_group: usize) -> Vec<(usize, InteractionList)> {
        self.groups(n_group)
            .into_iter()
            .map(|g| {
                let mut list = InteractionList::default();
                self.walk_mac(&self.nodes[g].bbox, theta, &mut list);
                (g, list)
            })
            .collect()
    }
}

/// Evaluate softened monopole gravity for one group against its interaction
/// list, accumulating acceleration (without the G factor) and the positive
/// potential sum — the reference evaluator used by tests and the serial
/// path. `idx_i` are target particle indices; EPJ indices refer into
/// `pos`/`mass` as well.
#[allow(clippy::too_many_arguments)]
pub fn eval_gravity_reference(
    idx_i: &[u32],
    pos: &[Vec3],
    mass: &[f64],
    eps2: f64,
    list: &InteractionList,
    acc: &mut [Vec3],
    pot: &mut [f64],
    skip_self: bool,
) {
    for &i in idx_i {
        let i = i as usize;
        let pi = pos[i];
        let mut a = Vec3::ZERO;
        let mut p = 0.0;
        for &j in &list.ep {
            let j = j as usize;
            if skip_self && i == j {
                continue;
            }
            let d = pi - pos[j];
            let r2 = d.norm2() + eps2;
            let rinv = 1.0 / r2.sqrt();
            let mr3 = mass[j] * rinv * rinv * rinv;
            a -= d * mr3;
            p += mass[j] * rinv;
        }
        for s in &list.sp {
            let d = pi - s.pos;
            let r2 = d.norm2() + eps2;
            let rinv = 1.0 / r2.sqrt();
            let mr3 = s.mass * rinv * rinv * rinv;
            a -= d * mr3;
            p += s.mass * rinv;
        }
        acc[i] += a;
        pot[i] += p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        (pos, mass)
    }

    fn direct_gravity(pos: &[Vec3], mass: &[f64], eps2: f64) -> (Vec<Vec3>, Vec<f64>) {
        let n = pos.len();
        let mut acc = vec![Vec3::ZERO; n];
        let mut pot = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = pos[i] - pos[j];
                let r2 = d.norm2() + eps2;
                let rinv = 1.0 / r2.sqrt();
                let mr3 = mass[j] * rinv * rinv * rinv;
                acc[i] -= d * mr3;
                pot[i] += mass[j] * rinv;
            }
        }
        (acc, pot)
    }

    /// Tree gravity over interaction lists, for tests.
    fn tree_gravity(
        pos: &[Vec3],
        mass: &[f64],
        eps2: f64,
        theta: f64,
        n_group: usize,
    ) -> (Vec<Vec3>, Vec<f64>) {
        let tree = Tree::build(pos, mass, 8);
        let mut acc = vec![Vec3::ZERO; pos.len()];
        let mut pot = vec![0.0; pos.len()];
        for (g, list) in tree.interaction_lists(theta, n_group) {
            let node = tree.nodes[g].clone();
            let idx: Vec<u32> = tree.leaf_particles(&node).to_vec();
            eval_gravity_reference(&idx, pos, mass, eps2, &list, &mut acc, &mut pot, true);
        }
        (acc, pot)
    }

    #[test]
    fn theta_zero_reproduces_direct_sum() {
        let (pos, mass) = random_cloud(200, 1);
        let eps2 = 1e-6;
        let (a_direct, p_direct) = direct_gravity(&pos, &mass, eps2);
        let (a_tree, p_tree) = tree_gravity(&pos, &mass, eps2, 0.0, 32);
        for i in 0..pos.len() {
            assert!((a_tree[i] - a_direct[i]).norm() < 1e-10, "acc[{i}]");
            assert!((p_tree[i] - p_direct[i]).abs() < 1e-10, "pot[{i}]");
        }
    }

    #[test]
    fn theta_half_is_accurate_to_a_percent() {
        let (pos, mass) = random_cloud(500, 2);
        let eps2 = 1e-4;
        let (a_direct, _) = direct_gravity(&pos, &mass, eps2);
        let (a_tree, _) = tree_gravity(&pos, &mass, eps2, 0.5, 64);
        let mut worst: f64 = 0.0;
        let mut mean = 0.0;
        for i in 0..pos.len() {
            let rel = (a_tree[i] - a_direct[i]).norm() / a_direct[i].norm().max(1e-12);
            worst = worst.max(rel);
            mean += rel;
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.01, "mean rel err {mean}");
        assert!(worst < 0.20, "worst rel err {worst}");
    }

    #[test]
    fn list_length_shrinks_with_larger_theta() {
        let (pos, mass) = random_cloud(1000, 3);
        let tree = Tree::build(&pos, &mass, 8);
        let total_len = |theta: f64| -> usize {
            tree.interaction_lists(theta, 64)
                .iter()
                .map(|(_, l)| l.len())
                .sum()
        };
        let l_small = total_len(0.2);
        let l_big = total_len(0.8);
        assert!(
            l_big < l_small,
            "larger theta must shorten lists: {l_big} vs {l_small}"
        );
    }

    #[test]
    fn mass_is_conserved_across_every_list() {
        // EPJ + SPJ masses in any group's list must sum to the total mass.
        let (pos, mass) = random_cloud(300, 4);
        let total: f64 = mass.iter().sum();
        let tree = Tree::build(&pos, &mass, 8);
        for (_, list) in tree.interaction_lists(0.6, 32) {
            let m: f64 = list.ep.iter().map(|&j| mass[j as usize]).sum::<f64>()
                + list.sp.iter().map(|s| s.mass).sum::<f64>();
            assert!((m - total).abs() < 1e-9 * total.max(1.0));
        }
    }

    #[test]
    fn group_sizes_respect_n_group() {
        let (pos, mass) = random_cloud(1000, 5);
        let tree = Tree::build(&pos, &mass, 8);
        for (g, _) in tree.interaction_lists(0.5, 100) {
            assert!(tree.nodes[g].len() <= 100 || tree.nodes[g].is_leaf());
        }
    }

    #[test]
    fn momentum_is_conserved_by_direct_part() {
        // With theta=0 (pure direct sum) total momentum change is zero by
        // Newton's third law.
        let (pos, mass) = random_cloud(100, 6);
        let (acc, _) = tree_gravity(&pos, &mass, 1e-6, 0.0, 16);
        let mut net = Vec3::ZERO;
        for (a, &m) in acc.iter().zip(&mass) {
            net += *a * m;
        }
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }
}
