//! Tree traversal producing interaction lists (paper §5.2.2, §5.2.4).
//!
//! FDPS evaluates forces group-wise: particles are grouped into sets of at
//! most `n_g` (the paper tunes `n_g = 2048` on Fugaku, `65536` on Miyabi),
//! one tree walk per group collects the *interaction list* — nearby
//! particles kept individually plus distant nodes accepted as monopole
//! "super-particles" — and the user kernel then evaluates group × list.
//!
//! # Buffer-reuse contract
//!
//! The walk is the hottest loop in the code and is written to perform **no
//! heap allocation in steady state**. The contract has four parts:
//!
//! * [`Tree::walk_mac_into`] takes a caller-owned [`WalkScratch`] (the
//!   explicit traversal stack) and a caller-owned [`InteractionList`] (the
//!   `ep`/`sp` output buffers). Both are **cleared, never shrunk**: after a
//!   warm-up walk their capacities stabilize at the high-water mark and
//!   subsequent walks reuse the storage.
//! * Per-thread reuse: parallel drivers thread one `WalkScratch` +
//!   `InteractionList` pair per worker through rayon's `map_init`, so a
//!   worker's scratch persists across all groups it processes (see
//!   [`Tree::interaction_lists`] and the gravity solver).
//! * Per-tree reuse: hot drivers build one [`WalkIndex`] per tree — a
//!   compact cache-line-per-node SoA snapshot of the walk-relevant node
//!   data (bounds, precomputed size², child/leaf encoding, monopole) — and
//!   walk through [`Tree::walk_mac_indexed`], which also resolves
//!   accepted/leaf children inline instead of round-tripping them through
//!   the stack. The index is immutable and shared by all workers.
//! * [`Tree::walk_mac_into`] is an explicit-stack DFS visiting children in
//!   index order, so its output is **element-for-element identical** to the
//!   recursive reference [`Tree::walk_mac_recursive`], which is kept as the
//!   checked-in naive baseline for tests and benchmarks.
//!   `walk_mac_indexed` emits the **same EP set and SP multiset** but in a
//!   different (still deterministic) order, because accepted children are
//!   emitted before their earlier siblings' subtrees are expanded.
//!
//! [`Tree::walk_mac`] remains as the allocation-per-call convenience
//! wrapper for cold paths and tests.

use crate::bbox::BBox;
use crate::tree::{Tree, ROOT};
use crate::vec3::Vec3;
use rayon::prelude::*;

/// A distant tree node accepted by the multipole acceptance criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperParticle {
    pub pos: Vec3,
    pub mass: f64,
}

/// The j-side of one group's force evaluation.
#[derive(Debug, Clone, Default)]
pub struct InteractionList {
    /// Indices of individually kept particles (EPJ).
    pub ep: Vec<u32>,
    /// Monopole-aggregated distant nodes (SPJ).
    pub sp: Vec<SuperParticle>,
}

impl InteractionList {
    /// Total entries (the paper's interaction-list length `n_l`).
    pub fn len(&self) -> usize {
        self.ep.len() + self.sp.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ep.is_empty() && self.sp.is_empty()
    }

    /// Empty both sides, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        self.ep.clear();
        self.sp.clear();
    }

    /// Current `(ep, sp)` capacities — used by the zero-allocation
    /// regression tests to detect steady-state heap growth.
    pub fn capacities(&self) -> (usize, usize) {
        (self.ep.capacity(), self.sp.capacity())
    }
}

/// Reusable traversal state for the iterative MAC walk: the explicit DFS
/// stack. Cleared (capacity kept) at the start of every walk.
#[derive(Debug, Clone, Default)]
pub struct WalkScratch {
    stack: Vec<u32>,
}

impl WalkScratch {
    /// Current stack capacity (zero-allocation regression tests).
    pub fn capacity(&self) -> usize {
        self.stack.capacity()
    }
}

/// Leaf marker in [`GeoNode::a`]: set means `(a & !LEAF_BIT, b)` is the
/// node's particle range into [`Tree::order`]; clear means `(a, b)` is
/// `(child_start, child_count)`.
const LEAF_BIT: u32 = 1 << 31;

/// One node of the compact walk index: exactly one 64-byte cache line of
/// everything the opening test needs.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct GeoNode {
    lo: [f64; 3],
    hi: [f64; 3],
    /// Precomputed `size * size` for the acceptance test.
    size2: f64,
    a: u32,
    b: u32,
}

impl GeoNode {
    /// Minimum squared distance between this node's box and `[tlo, thi]`.
    #[inline(always)]
    fn dist2(&self, tlo: &[f64; 3], thi: &[f64; 3]) -> f64 {
        let dx = (self.lo[0] - thi[0]).max(0.0).max(tlo[0] - self.hi[0]);
        let dy = (self.lo[1] - thi[1]).max(0.0).max(tlo[1] - self.hi[1]);
        let dz = (self.lo[2] - thi[2]).max(0.0).max(tlo[2] - self.hi[2]);
        dx * dx + dy * dy + dz * dz
    }
}

/// Compact per-tree walk acceleration structure (see the module docs'
/// buffer-reuse contract). Build once per tree with [`Tree::walk_index`];
/// immutable and shared across worker threads.
#[derive(Debug, Clone)]
pub struct WalkIndex {
    geo: Vec<GeoNode>,
    /// Monopole `[com.x, com.y, com.z, mass]`, touched only on acceptance.
    com: Vec<[f64; 4]>,
}

impl WalkIndex {
    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.geo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.geo.is_empty()
    }

    /// Capacities of the two node arrays (zero-allocation regression
    /// bookkeeping, like [`InteractionList::capacities`]).
    pub fn capacities(&self) -> (usize, usize) {
        (self.geo.capacity(), self.com.capacity())
    }

    /// Refresh the index in place after a moment-only [`Tree::refresh`]:
    /// the node topology (child links, leaf ranges) is unchanged, so only
    /// the geometry (bounding boxes, sizes) and monopoles are rewritten.
    /// O(nodes), zero heap allocation — the per-substep companion of
    /// [`Tree::refresh`] that spares rebuilding the index every force
    /// evaluation.
    ///
    /// The tree must have the same node count as the build this index came
    /// from (a changed topology needs [`WalkIndex::rebuild_from`]).
    pub fn refresh(&mut self, tree: &Tree) {
        assert_eq!(
            self.geo.len(),
            tree.nodes.len(),
            "walk index refresh requires an unchanged tree topology"
        );
        for (nd, (g, c)) in tree
            .nodes
            .iter()
            .zip(self.geo.iter_mut().zip(self.com.iter_mut()))
        {
            let s = nd.size();
            g.lo = [nd.bbox.lo.x, nd.bbox.lo.y, nd.bbox.lo.z];
            g.hi = [nd.bbox.hi.x, nd.bbox.hi.y, nd.bbox.hi.z];
            g.size2 = s * s;
            *c = [nd.com.x, nd.com.y, nd.com.z, nd.mass];
        }
    }

    /// Re-derive the index from a freshly built tree, reusing this index's
    /// storage (clear + refill; grows only past the high-water mark).
    pub fn rebuild_from(&mut self, tree: &Tree) {
        self.geo.clear();
        self.com.clear();
        tree.fill_walk_index(&mut self.geo, &mut self.com);
    }
}

impl Tree {
    /// Walk the tree for a target region and collect the interaction list.
    ///
    /// A node is *opened* (descended into) when `size > theta * dist`, where
    /// `dist` is the distance from the target box to the node's bounding
    /// box — the standard Barnes–Hut opening criterion generalized to group
    /// targets. Opened leaves contribute their particles as EPJ; accepted
    /// nodes contribute their monopole as SPJ.
    ///
    /// Convenience wrapper over [`Tree::walk_mac_into`] that allocates its
    /// own traversal stack; `out` is appended to (historical behaviour —
    /// callers pass a fresh list). Hot paths should hold a [`WalkScratch`]
    /// and call `walk_mac_into` instead.
    pub fn walk_mac(&self, target: &BBox, theta: f64, out: &mut InteractionList) {
        let mut scratch = WalkScratch::default();
        self.walk_mac_append(target, theta, &mut scratch, out);
    }

    /// Iterative explicit-stack MAC walk into caller-owned buffers.
    ///
    /// `out` is cleared first (capacity kept); `scratch` holds the DFS
    /// stack across calls. In steady state this performs zero heap
    /// allocation. Children are visited in index order, so the output is
    /// identical to [`Tree::walk_mac_recursive`].
    pub fn walk_mac_into(
        &self,
        target: &BBox,
        theta: f64,
        scratch: &mut WalkScratch,
        out: &mut InteractionList,
    ) {
        out.clear();
        self.walk_mac_append(target, theta, scratch, out);
    }

    /// The iterative walk core: appends to `out` without clearing.
    fn walk_mac_append(
        &self,
        target: &BBox,
        theta: f64,
        scratch: &mut WalkScratch,
        out: &mut InteractionList,
    ) {
        if self.is_empty() {
            return;
        }
        let theta2 = theta * theta;
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(ROOT as u32);
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node as usize];
            if n.bbox.is_empty() {
                continue;
            }
            let d2 = target.dist2_to_box(&n.bbox);
            let s = n.size();
            // Accept as monopole when s^2 <= theta^2 d^2 (and the node is
            // not overlapping the target, where d2 = 0 forces opening).
            if d2 > 0.0 && s * s <= theta2 * d2 {
                out.sp.push(SuperParticle {
                    pos: n.com,
                    mass: n.mass,
                });
                continue;
            }
            if n.is_leaf() {
                out.ep.extend_from_slice(self.leaf_particles(n));
            } else {
                // Push in reverse so the LIFO pop visits children in index
                // order, matching the recursive reference exactly.
                for c in (0..n.child_count as u32).rev() {
                    stack.push(n.child_start + c);
                }
            }
        }
    }

    /// The naive recursive MAC walk, kept as the checked-in reference
    /// baseline: tests assert the iterative walk reproduces it
    /// element-for-element, and `cargo bench --bench force_pipeline`
    /// measures the iterative walk's speedup against it.
    pub fn walk_mac_recursive(&self, target: &BBox, theta: f64, out: &mut InteractionList) {
        if self.is_empty() {
            return;
        }
        self.walk_mac_rec(ROOT, target, theta * theta, out);
    }

    fn walk_mac_rec(&self, node: usize, target: &BBox, theta2: f64, out: &mut InteractionList) {
        let n = &self.nodes[node];
        if n.bbox.is_empty() {
            return;
        }
        let d2 = target.dist2_to_box(&n.bbox);
        let s = n.size();
        if d2 > 0.0 && s * s <= theta2 * d2 {
            out.sp.push(SuperParticle {
                pos: n.com,
                mass: n.mass,
            });
            return;
        }
        if n.is_leaf() {
            out.ep.extend_from_slice(self.leaf_particles(n));
        } else {
            for c in 0..n.child_count as usize {
                self.walk_mac_rec(n.child_start as usize + c, target, theta2, out);
            }
        }
    }

    /// Build the compact walk index for this tree: one pass over the nodes,
    /// amortized over every group walked against the tree.
    pub fn walk_index(&self) -> WalkIndex {
        let mut geo = Vec::with_capacity(self.nodes.len());
        let mut com = Vec::with_capacity(self.nodes.len());
        self.fill_walk_index(&mut geo, &mut com);
        WalkIndex { geo, com }
    }

    /// The index-construction core shared by [`Tree::walk_index`] and
    /// [`WalkIndex::rebuild_from`]: appends one entry per node.
    fn fill_walk_index(&self, geo: &mut Vec<GeoNode>, com: &mut Vec<[f64; 4]>) {
        for nd in &self.nodes {
            let (a, b) = if nd.bbox.is_empty() {
                // Degenerate (empty tree root): encode as an empty leaf so
                // the walk skips it without special cases.
                (LEAF_BIT, 0)
            } else if nd.is_leaf() {
                // LEAF_BIT steals bit 31 of the range start: fail loudly
                // rather than decode a wrong range past 2^31 particles.
                assert!(
                    nd.start < LEAF_BIT,
                    "walk index supports at most 2^31 particles"
                );
                (nd.start | LEAF_BIT, nd.end)
            } else {
                (nd.child_start, nd.child_count as u32)
            };
            let s = nd.size();
            geo.push(GeoNode {
                lo: [nd.bbox.lo.x, nd.bbox.lo.y, nd.bbox.lo.z],
                hi: [nd.bbox.hi.x, nd.bbox.hi.y, nd.bbox.hi.z],
                size2: s * s,
                a,
                b,
            });
            com.push([nd.com.x, nd.com.y, nd.com.z, nd.mass]);
        }
    }

    /// The hot-path MAC walk over a prebuilt [`WalkIndex`].
    ///
    /// Same acceptance criterion as [`Tree::walk_mac_into`] and therefore
    /// the same EP set and SP multiset, but accepted/leaf children are
    /// resolved inline (only opened internal nodes touch the stack), so the
    /// emission *order* differs. `out` is cleared first; `scratch` and
    /// `out` follow the module's buffer-reuse contract.
    pub fn walk_mac_indexed(
        &self,
        index: &WalkIndex,
        target: &BBox,
        theta: f64,
        scratch: &mut WalkScratch,
        out: &mut InteractionList,
    ) {
        debug_assert_eq!(index.geo.len(), self.nodes.len(), "index/tree mismatch");
        out.clear();
        if self.is_empty() {
            return;
        }
        let theta2 = theta * theta;
        let tlo = [target.lo.x, target.lo.y, target.lo.z];
        let thi = [target.hi.x, target.hi.y, target.hi.z];
        let stack = &mut scratch.stack;
        stack.clear();

        // Examine one node: accepted monopoles and leaves are emitted
        // inline; only nodes that must be opened go through the stack.
        macro_rules! examine {
            ($n:expr) => {{
                let node = $n;
                let g = &index.geo[node as usize];
                let d2 = g.dist2(&tlo, &thi);
                if d2 > 0.0 && g.size2 <= theta2 * d2 {
                    let c = &index.com[node as usize];
                    out.sp.push(SuperParticle {
                        pos: Vec3::new(c[0], c[1], c[2]),
                        mass: c[3],
                    });
                } else if g.a & LEAF_BIT != 0 {
                    out.ep
                        .extend_from_slice(&self.order[(g.a & !LEAF_BIT) as usize..g.b as usize]);
                } else {
                    stack.push(node);
                }
            }};
        }

        examine!(ROOT as u32);
        while let Some(n) = stack.pop() {
            let g = index.geo[n as usize];
            for c in (g.a..g.a + g.b).rev() {
                examine!(c);
            }
        }
    }

    /// Walk for every group of at most `n_group` particles: returns
    /// `(group node index, interaction list)` pairs. The group's target box
    /// is its tight bounding box. Groups are walked in parallel over one
    /// shared [`WalkIndex`]; each rayon worker keeps one [`WalkScratch`]
    /// across all groups it processes.
    pub fn interaction_lists(&self, theta: f64, n_group: usize) -> Vec<(usize, InteractionList)> {
        let groups = self.groups(n_group);
        let index = self.walk_index();
        groups
            .par_iter()
            .map_init(WalkScratch::default, |scratch, &g| {
                let mut list = InteractionList::default();
                self.walk_mac_indexed(&index, &self.nodes[g].bbox, theta, scratch, &mut list);
                (g, list)
            })
            .collect()
    }
}

/// Evaluate softened monopole gravity for one group against its interaction
/// list, accumulating acceleration (without the G factor) and the positive
/// potential sum — the reference evaluator used by tests and the serial
/// path. `idx_i` are target particle indices; EPJ indices refer into
/// `pos`/`mass` as well.
///
/// The inner loops run four partial accumulators wide (independent
/// dependency chains over EP then SP, with `eps2` hoisted) so the compiler
/// can pipeline the sqrt/divide chain; the lane sums are reduced once per
/// target.
#[allow(clippy::too_many_arguments)]
pub fn eval_gravity_reference(
    idx_i: &[u32],
    pos: &[Vec3],
    mass: &[f64],
    eps2: f64,
    list: &InteractionList,
    acc: &mut [Vec3],
    pot: &mut [f64],
    skip_self: bool,
) {
    for &i in idx_i {
        let i = i as usize;
        let pi = pos[i];
        let mut ax = [0.0f64; 4];
        let mut ay = [0.0f64; 4];
        let mut az = [0.0f64; 4];
        let mut ps = [0.0f64; 4];

        let ep = &list.ep;
        let mut j = 0;
        while j + 4 <= ep.len() {
            for lane in 0..4 {
                let jj = ep[j + lane] as usize;
                if skip_self && i == jj {
                    continue;
                }
                let d = pi - pos[jj];
                let r2 = d.norm2() + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = mass[jj] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * d.x;
                ay[lane] -= mr3 * d.y;
                az[lane] -= mr3 * d.z;
                ps[lane] += mrinv;
            }
            j += 4;
        }
        while j < ep.len() {
            let jj = ep[j] as usize;
            j += 1;
            if skip_self && i == jj {
                continue;
            }
            let d = pi - pos[jj];
            let r2 = d.norm2() + eps2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = mass[jj] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * d.x;
            ay[0] -= mr3 * d.y;
            az[0] -= mr3 * d.z;
            ps[0] += mrinv;
        }

        let sp = &list.sp;
        let mut k = 0;
        while k + 4 <= sp.len() {
            for lane in 0..4 {
                let s = &sp[k + lane];
                let d = pi - s.pos;
                let r2 = d.norm2() + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = s.mass * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * d.x;
                ay[lane] -= mr3 * d.y;
                az[lane] -= mr3 * d.z;
                ps[lane] += mrinv;
            }
            k += 4;
        }
        while k < sp.len() {
            let s = &sp[k];
            k += 1;
            let d = pi - s.pos;
            let r2 = d.norm2() + eps2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = s.mass * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * d.x;
            ay[0] -= mr3 * d.y;
            az[0] -= mr3 * d.z;
            ps[0] += mrinv;
        }

        acc[i] += Vec3::new(
            ax[0] + ax[1] + ax[2] + ax[3],
            ay[0] + ay[1] + ay[2] + ay[3],
            az[0] + az[1] + az[2] + az[3],
        );
        pot[i] += ps[0] + ps[1] + ps[2] + ps[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        (pos, mass)
    }

    fn direct_gravity(pos: &[Vec3], mass: &[f64], eps2: f64) -> (Vec<Vec3>, Vec<f64>) {
        let n = pos.len();
        let mut acc = vec![Vec3::ZERO; n];
        let mut pot = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = pos[i] - pos[j];
                let r2 = d.norm2() + eps2;
                let rinv = 1.0 / r2.sqrt();
                let mr3 = mass[j] * rinv * rinv * rinv;
                acc[i] -= d * mr3;
                pot[i] += mass[j] * rinv;
            }
        }
        (acc, pot)
    }

    /// Tree gravity over interaction lists, for tests.
    fn tree_gravity(
        pos: &[Vec3],
        mass: &[f64],
        eps2: f64,
        theta: f64,
        n_group: usize,
    ) -> (Vec<Vec3>, Vec<f64>) {
        let tree = Tree::build(pos, mass, 8);
        let mut acc = vec![Vec3::ZERO; pos.len()];
        let mut pot = vec![0.0; pos.len()];
        for (g, list) in tree.interaction_lists(theta, n_group) {
            let idx: Vec<u32> = tree.leaf_particles(&tree.nodes[g]).to_vec();
            eval_gravity_reference(&idx, pos, mass, eps2, &list, &mut acc, &mut pot, true);
        }
        (acc, pot)
    }

    #[test]
    fn theta_zero_reproduces_direct_sum() {
        let (pos, mass) = random_cloud(200, 1);
        let eps2 = 1e-6;
        let (a_direct, p_direct) = direct_gravity(&pos, &mass, eps2);
        let (a_tree, p_tree) = tree_gravity(&pos, &mass, eps2, 0.0, 32);
        for i in 0..pos.len() {
            assert!((a_tree[i] - a_direct[i]).norm() < 1e-10, "acc[{i}]");
            assert!((p_tree[i] - p_direct[i]).abs() < 1e-10, "pot[{i}]");
        }
    }

    #[test]
    fn theta_half_is_accurate_to_a_percent() {
        let (pos, mass) = random_cloud(500, 2);
        let eps2 = 1e-4;
        let (a_direct, _) = direct_gravity(&pos, &mass, eps2);
        let (a_tree, _) = tree_gravity(&pos, &mass, eps2, 0.5, 64);
        let mut worst: f64 = 0.0;
        let mut mean = 0.0;
        for i in 0..pos.len() {
            let rel = (a_tree[i] - a_direct[i]).norm() / a_direct[i].norm().max(1e-12);
            worst = worst.max(rel);
            mean += rel;
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.01, "mean rel err {mean}");
        assert!(worst < 0.20, "worst rel err {worst}");
    }

    #[test]
    fn list_length_shrinks_with_larger_theta() {
        let (pos, mass) = random_cloud(1000, 3);
        let tree = Tree::build(&pos, &mass, 8);
        let total_len = |theta: f64| -> usize {
            tree.interaction_lists(theta, 64)
                .iter()
                .map(|(_, l)| l.len())
                .sum()
        };
        let l_small = total_len(0.2);
        let l_big = total_len(0.8);
        assert!(
            l_big < l_small,
            "larger theta must shorten lists: {l_big} vs {l_small}"
        );
    }

    #[test]
    fn mass_is_conserved_across_every_list() {
        // EPJ + SPJ masses in any group's list must sum to the total mass.
        let (pos, mass) = random_cloud(300, 4);
        let total: f64 = mass.iter().sum();
        let tree = Tree::build(&pos, &mass, 8);
        for (_, list) in tree.interaction_lists(0.6, 32) {
            let m: f64 = list.ep.iter().map(|&j| mass[j as usize]).sum::<f64>()
                + list.sp.iter().map(|s| s.mass).sum::<f64>();
            assert!((m - total).abs() < 1e-9 * total.max(1.0));
        }
    }

    #[test]
    fn group_sizes_respect_n_group() {
        let (pos, mass) = random_cloud(1000, 5);
        let tree = Tree::build(&pos, &mass, 8);
        for (g, _) in tree.interaction_lists(0.5, 100) {
            assert!(tree.nodes[g].len() <= 100 || tree.nodes[g].is_leaf());
        }
    }

    #[test]
    fn momentum_is_conserved_by_direct_part() {
        // With theta=0 (pure direct sum) total momentum change is zero by
        // Newton's third law.
        let (pos, mass) = random_cloud(100, 6);
        let (acc, _) = tree_gravity(&pos, &mass, 1e-6, 0.0, 16);
        let mut net = Vec3::ZERO;
        for (a, &m) in acc.iter().zip(&mass) {
            net += *a * m;
        }
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }

    /// Sort key of one super-particle: its bit-exact coordinates and mass.
    type SpKey = (u64, u64, u64, u64);

    /// Canonical (sorted) form of a list for set-equality comparison.
    fn canonical(list: &InteractionList) -> (Vec<u32>, Vec<SpKey>) {
        let mut ep = list.ep.clone();
        ep.sort_unstable();
        let mut sp: Vec<SpKey> = list
            .sp
            .iter()
            .map(|s| {
                (
                    s.pos.x.to_bits(),
                    s.pos.y.to_bits(),
                    s.pos.z.to_bits(),
                    s.mass.to_bits(),
                )
            })
            .collect();
        sp.sort_unstable();
        (ep, sp)
    }

    /// Property test: the iterative explicit-stack walk emits exactly the
    /// recursive reference's interaction list — same EP sequence, same SP
    /// monopoles — and the indexed walk emits the same EP set / SP
    /// multiset, over random clouds and a grid of `theta`/`n_group`.
    #[test]
    fn iterative_walk_matches_recursive_reference() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
            let n = rng.gen_range(2..600usize);
            let (pos, mass) = random_cloud(n, seed + 100);
            let tree = Tree::build(&pos, &mass, rng.gen_range(1..12usize));
            let index = tree.walk_index();
            let mut scratch = WalkScratch::default();
            let mut iterative = InteractionList::default();
            let mut indexed = InteractionList::default();
            for theta in [0.0, 0.3, 0.5, 0.8, 1.2] {
                for n_group in [1usize, 16, 64, 1024] {
                    for g in tree.groups(n_group) {
                        let target = tree.nodes[g].bbox;
                        let mut recursive = InteractionList::default();
                        tree.walk_mac_recursive(&target, theta, &mut recursive);
                        tree.walk_mac_into(&target, theta, &mut scratch, &mut iterative);
                        assert_eq!(
                            iterative.ep, recursive.ep,
                            "seed {seed} theta {theta} n_group {n_group} group {g}: EP mismatch"
                        );
                        assert_eq!(
                            iterative.sp, recursive.sp,
                            "seed {seed} theta {theta} n_group {n_group} group {g}: SP mismatch"
                        );
                        tree.walk_mac_indexed(&index, &target, theta, &mut scratch, &mut indexed);
                        assert_eq!(
                            canonical(&indexed),
                            canonical(&recursive),
                            "seed {seed} theta {theta} n_group {n_group} group {g}: indexed set mismatch"
                        );
                    }
                }
            }
        }
    }

    /// The walk scratch and output buffers stop growing after a warm-up
    /// walk: steady-state traversals are allocation-free.
    #[test]
    fn walk_buffers_reach_steady_state() {
        let (pos, mass) = random_cloud(2000, 9);
        let tree = Tree::build(&pos, &mass, 8);
        let groups = tree.groups(64);
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        // Warm-up pass over every group.
        for &g in &groups {
            tree.walk_mac_into(&tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
        }
        let stack_cap = scratch.capacity();
        let list_caps = list.capacities();
        // Steady state: identical walks must not grow any buffer.
        for _ in 0..3 {
            for &g in &groups {
                tree.walk_mac_into(&tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
            }
        }
        assert_eq!(scratch.capacity(), stack_cap, "stack grew after warm-up");
        assert_eq!(list.capacities(), list_caps, "ep/sp grew after warm-up");
    }

    /// The 4-wide unrolled evaluator matches a scalar direct sum bit-for-
    /// tolerance across EP/SP splits and remainder lengths.
    #[test]
    fn unrolled_reference_matches_scalar_for_all_remainders() {
        let (pos, mass) = random_cloud(70, 11);
        let eps2 = 1e-4;
        for n_ep in [0usize, 1, 2, 3, 4, 5, 7, 8, 13] {
            for n_sp in [0usize, 1, 3, 4, 6, 9] {
                let list = InteractionList {
                    ep: (0..n_ep as u32).collect(),
                    sp: (0..n_sp)
                        .map(|k| SuperParticle {
                            pos: pos[30 + k],
                            mass: mass[30 + k] * 3.0,
                        })
                        .collect(),
                };
                let idx = [20u32, 21, 22];
                let mut acc = vec![Vec3::ZERO; pos.len()];
                let mut pot = vec![0.0; pos.len()];
                eval_gravity_reference(&idx, &pos, &mass, eps2, &list, &mut acc, &mut pot, true);
                for &i in &idx {
                    let i = i as usize;
                    let mut a = Vec3::ZERO;
                    let mut p = 0.0;
                    for &j in &list.ep {
                        let j = j as usize;
                        if i == j {
                            continue;
                        }
                        let d = pos[i] - pos[j];
                        let r2 = d.norm2() + eps2;
                        let rinv = 1.0 / r2.sqrt();
                        a -= d * (mass[j] * rinv * rinv * rinv);
                        p += mass[j] * rinv;
                    }
                    for s in &list.sp {
                        let d = pos[i] - s.pos;
                        let r2 = d.norm2() + eps2;
                        let rinv = 1.0 / r2.sqrt();
                        a -= d * (s.mass * rinv * rinv * rinv);
                        p += s.mass * rinv;
                    }
                    assert!((acc[i] - a).norm() < 1e-12, "ep {n_ep} sp {n_sp} acc[{i}]");
                    assert!((pot[i] - p).abs() < 1e-12, "ep {n_ep} sp {n_sp} pot[{i}]");
                }
            }
        }
    }

    /// Walk the whole tree per-leaf and collect (sorted EP, sorted SP bits)
    /// per target node, for index-equivalence assertions.
    fn walk_all_indexed(tree: &Tree, index: &WalkIndex, theta: f64) -> Vec<(Vec<u32>, Vec<u64>)> {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        tree.groups(16)
            .into_iter()
            .map(|g| {
                tree.walk_mac_indexed(index, &tree.nodes[g].bbox, theta, &mut scratch, &mut list);
                let mut ep = list.ep.clone();
                ep.sort_unstable();
                let mut sp: Vec<u64> = list
                    .sp
                    .iter()
                    .flat_map(|s| {
                        [
                            s.pos.x.to_bits(),
                            s.pos.y.to_bits(),
                            s.pos.z.to_bits(),
                            s.mass.to_bits(),
                        ]
                    })
                    .collect();
                sp.sort_unstable();
                (ep, sp)
            })
            .collect()
    }

    #[test]
    fn refreshed_index_matches_a_fresh_build_after_tree_refresh() {
        let (mut pos, mass) = random_cloud(600, 9);
        let mut tree = Tree::build(&pos, &mass, 8);
        let mut index = tree.walk_index();
        let caps = index.capacities();
        // Drift the particles a little (tree topology kept), then
        // moment-refresh both structures in place.
        let mut rng = StdRng::seed_from_u64(10);
        for p in pos.iter_mut() {
            *p += Vec3::new(
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
            );
        }
        tree.refresh(&pos, &mass);
        index.refresh(&tree);
        assert_eq!(index.capacities(), caps, "refresh must not reallocate");
        let fresh = tree.walk_index();
        assert_eq!(
            walk_all_indexed(&tree, &index, 0.5),
            walk_all_indexed(&tree, &fresh, 0.5),
            "refreshed index must walk identically to a rebuilt one"
        );
    }

    #[test]
    fn rebuild_from_reuses_storage_and_matches_walk_index() {
        let (pos, mass) = random_cloud(400, 11);
        let tree = Tree::build(&pos, &mass, 8);
        let mut index = tree.walk_index();
        // Rebuild against a differently shaped tree: same result as a
        // fresh walk_index, storage reused where capacity allows.
        let (pos2, mass2) = random_cloud(350, 12);
        let tree2 = Tree::build(&pos2, &mass2, 8);
        index.rebuild_from(&tree2);
        assert_eq!(index.len(), tree2.nodes.len());
        let fresh = tree2.walk_index();
        assert_eq!(
            walk_all_indexed(&tree2, &index, 0.4),
            walk_all_indexed(&tree2, &fresh, 0.4)
        );
    }

    #[test]
    #[should_panic(expected = "unchanged tree topology")]
    fn refresh_rejects_a_topology_change() {
        let (pos, mass) = random_cloud(300, 13);
        let tree = Tree::build(&pos, &mass, 8);
        let mut index = tree.walk_index();
        let small = Tree::build(&pos[..100], &mass[..100], 8);
        index.refresh(&small);
    }
}
