//! Communicators: rank identity, point-to-point messaging, and splitting.

use crate::message::{slice_bytes, Message, COLLECTIVE_TAG_BASE};
use crate::world::WorldShared;
use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A communicator: a group of ranks that can exchange messages and take part
/// in collectives, analogous to `MPI_Comm`.
///
/// Each rank thread owns its `Comm` values; a communicator created by
/// [`Comm::split`] coexists with its parent (the paper keeps the world
/// communicator for main↔pool traffic alongside the split main-only one).
pub struct Comm {
    shared: Arc<WorldShared>,
    id: u64,
    rank: usize,
    /// Maps this communicator's ranks to world ranks.
    members: Arc<Vec<usize>>,
    /// Collective sequence number; advances identically on every member
    /// because collectives are (as in MPI) called in the same order.
    coll_seq: Cell<u64>,
    epoch: Instant,
}

impl Comm {
    pub(crate) fn world(shared: Arc<WorldShared>, rank: usize, members: Arc<Vec<usize>>) -> Self {
        Comm {
            shared,
            id: 0,
            rank,
            members,
            coll_seq: Cell::new(0),
            epoch: Instant::now(),
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank backing a communicator rank.
    #[inline]
    pub fn world_rank(&self, rank: usize) -> usize {
        self.members[rank]
    }

    /// Wall-clock seconds since this communicator was created
    /// (`MPI_Wtime` analogue).
    #[inline]
    pub fn wtime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    #[inline]
    fn my_world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Send a single value. Wire size is `size_of::<T>()`.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, data: T) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "mpisim: user tags must be < 2^40"
        );
        self.send_raw(dst, tag, std::mem::size_of::<T>(), data);
    }

    /// Send a vector; wire size is `len * size_of::<T>()`.
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "mpisim: user tags must be < 2^40"
        );
        let bytes = slice_bytes::<T>(data.len());
        self.send_raw(dst, tag, bytes, data);
    }

    pub(crate) fn send_raw<T: Send + 'static>(&self, dst: usize, tag: u64, bytes: usize, data: T) {
        let world_dst = self.members[dst];
        self.shared.stats[self.my_world_rank()].record_send(bytes);
        self.shared.mailboxes[world_dst].post(Message::new(self.id, self.rank, tag, bytes, data));
    }

    /// Blocking receive of a single value from `src` with `tag`.
    pub fn recv<T: 'static>(&self, src: usize, tag: u64) -> T {
        self.recv_raw(src, tag)
    }

    /// Blocking receive of a vector from `src` with `tag`.
    pub fn recv_vec<T: 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: 'static>(&self, src: usize, tag: u64) -> T {
        self.shared.mailboxes[self.my_world_rank()]
            .recv_match(self.id, src, tag)
            .take()
    }

    /// Non-blocking probe for a pending message from `src` with `tag`
    /// (`MPI_Iprobe` analogue; the pool-node loop uses this).
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.shared.mailboxes[self.my_world_rank()].probe(self.id, src, tag)
    }

    /// Next collective tag; advances the per-communicator sequence.
    /// `slot` distinguishes rounds within one collective (< 256).
    pub(crate) fn coll_tag(&self, seq: u64, slot: u64) -> u64 {
        debug_assert!(slot < 256);
        COLLECTIVE_TAG_BASE + seq * 256 + slot
    }

    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        self.shared.stats[self.my_world_rank()].record_collective();
        s
    }

    /// Collective send used inside collectives (bypasses the user-tag check).
    pub(crate) fn coll_send<T: Send + 'static>(&self, dst: usize, tag: u64, data: T) {
        let bytes = std::mem::size_of::<T>();
        self.send_raw(dst, tag, bytes, data);
    }

    pub(crate) fn coll_send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        let bytes = slice_bytes::<T>(data.len());
        self.send_raw(dst, tag, bytes, data);
    }

    /// Split this communicator by `color`; ranks with equal color form a new
    /// communicator ordered by `(key, old rank)`, analogous to
    /// `MPI_Comm_split`. Collective over the parent.
    ///
    /// The paper splits the world into *main* ranks (galaxy integration) and
    /// *pool* ranks (surrogate inference) exactly this way.
    pub fn split(&self, color: u64, key: i64) -> Comm {
        // Gather (color, key) from everyone so each rank can compute its group.
        let triples: Vec<(u64, i64, usize)> = self.allgather((color, key, self.rank));
        let mut group: Vec<(i64, usize)> = triples
            .iter()
            .filter(|(c, _, _)| *c == color)
            .map(|(_, k, r)| (*k, *r))
            .collect();
        group.sort_unstable();
        let new_rank = group
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: calling rank missing from its own color group");
        let new_members: Vec<usize> = group.iter().map(|&(_, r)| self.members[r]).collect();

        // The group root allocates a globally unique id and distributes it to
        // the other members over the parent communicator.
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        let root_parent_rank = group[0].1;
        let new_id = if self.rank == root_parent_rank {
            let id = self.shared.next_comm_id.fetch_add(1, Ordering::Relaxed);
            for &(_, r) in group.iter().skip(1) {
                self.coll_send(r, tag, id);
            }
            id
        } else {
            self.recv_raw::<u64>(root_parent_rank, tag)
        };

        Comm {
            shared: Arc::clone(&self.shared),
            id: new_id,
            rank: new_rank,
            members: Arc::new(new_members),
            coll_seq: Cell::new(0),
            epoch: self.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn point_to_point_roundtrip() {
        World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 3, String::from("hello"));
                let back: String = c.recv(1, 4);
                assert_eq!(back, "hello back");
            } else {
                let s: String = c.recv(0, 3);
                assert_eq!(s, "hello");
                c.send(0, 4, format!("{s} back"));
            }
        });
    }

    #[test]
    fn tags_disambiguate_messages() {
        World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, 10u32);
                c.send(1, 2, 20u32);
            } else {
                // Receive in the opposite order of sending.
                let b: u32 = c.recv(0, 2);
                let a: u32 = c.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn probe_sees_pending_message() {
        World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 9, 1u8);
                c.barrier();
            } else {
                c.barrier();
                assert!(c.probe(0, 9));
                assert!(!c.probe(0, 10));
                let _: u8 = c.recv(0, 9);
            }
        });
    }

    #[test]
    fn split_into_main_and_pool() {
        // 6 ranks: last 2 become the pool, first 4 the main nodes.
        World::new(6).run(|c| {
            let is_pool = c.rank() >= 4;
            let sub = c.split(is_pool as u64, c.rank() as i64);
            if is_pool {
                assert_eq!(sub.size(), 2);
                assert_eq!(sub.rank(), c.rank() - 4);
            } else {
                assert_eq!(sub.size(), 4);
                assert_eq!(sub.rank(), c.rank());
            }
            // The sub-communicator must support its own collectives.
            let total = sub.allreduce_f64(1.0, crate::ReduceOp::Sum);
            assert_eq!(total, sub.size() as f64);
            // And the parent communicator still works for cross-group traffic.
            if c.rank() == 0 {
                c.send(4, 11, 123u64);
            } else if c.rank() == 4 {
                assert_eq!(c.recv::<u64>(0, 11), 123);
            }
        });
    }

    #[test]
    fn split_with_reverse_key_reverses_ranks() {
        World::new(4).run(|c| {
            let sub = c.split(0, -(c.rank() as i64));
            assert_eq!(sub.rank(), c.size() - 1 - c.rank());
        });
    }

    #[test]
    fn nested_splits_are_independent() {
        World::new(8).run(|c| {
            let half = c.split((c.rank() / 4) as u64, c.rank() as i64);
            let quarter = half.split((half.rank() / 2) as u64, half.rank() as i64);
            assert_eq!(quarter.size(), 2);
            let s = quarter.allreduce_f64(c.rank() as f64, crate::ReduceOp::Sum);
            // Pairs are (0,1), (2,3), (4,5), (6,7).
            let base = (c.rank() / 2) * 2;
            assert_eq!(s, (base + base + 1) as f64);
        });
    }
}
