//! Phase timing in the paper's measurement style (§4.3): `MPI_Barrier` +
//! `MPI_Wtime` brackets around each critical routine, reporting the elapsed
//! time of the *slowest* MPI process per phase.

use crate::collective::ReduceOp;
use crate::comm::Comm;
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulates named phase timings on one rank.
#[derive(Default)]
pub struct PhaseTimer {
    phases: BTreeMap<String, PhaseAccum>,
    order: Vec<String>,
}

#[derive(Default, Clone, Copy)]
struct PhaseAccum {
    total_s: f64,
    count: u64,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` inside barrier brackets so all ranks measure the same region.
    pub fn region<R>(&mut self, comm: &Comm, name: &str, f: impl FnOnce() -> R) -> R {
        comm.barrier();
        let t0 = Instant::now();
        let out = f();
        comm.barrier();
        self.record(name, t0.elapsed().as_secs_f64());
        out
    }

    /// Time `f` without barriers (for per-rank work inside a step).
    pub fn region_local<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.record(name, t0.elapsed().as_secs_f64());
        out
    }

    /// Record an externally measured duration.
    pub fn record(&mut self, name: &str, seconds: f64) {
        if !self.phases.contains_key(name) {
            self.order.push(name.to_string());
        }
        let acc = self.phases.entry(name.to_string()).or_default();
        acc.total_s += seconds;
        acc.count += 1;
    }

    /// Local (this rank only) report, phases in first-recorded order.
    pub fn local_report(&self) -> PhaseReport {
        PhaseReport {
            entries: self
                .order
                .iter()
                .map(|name| {
                    let acc = self.phases[name];
                    PhaseEntry {
                        name: name.clone(),
                        total_s: acc.total_s,
                        count: acc.count,
                    }
                })
                .collect(),
        }
    }

    /// Collective report: per phase, the maximum total time over all ranks —
    /// "the elapsed time for the slowest MPI process for each item"
    /// (paper, Table 3 footnote). All ranks must have recorded the same
    /// phases in the same order.
    pub fn report_max(&self, comm: &Comm) -> PhaseReport {
        let local = self.local_report();
        let totals: Vec<f64> = local.entries.iter().map(|e| e.total_s).collect();
        let maxima = comm.allreduce_vec_f64(totals, ReduceOp::Max);
        PhaseReport {
            entries: local
                .entries
                .into_iter()
                .zip(maxima)
                .map(|(mut e, m)| {
                    e.total_s = m;
                    e
                })
                .collect(),
        }
    }
}

/// One phase's aggregated timing.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEntry {
    pub name: String,
    pub total_s: f64,
    pub count: u64,
}

impl PhaseEntry {
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// Aggregated timing report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    pub entries: Vec<PhaseEntry>,
}

impl PhaseReport {
    pub fn get(&self, name: &str) -> Option<&PhaseEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    pub fn total_s(&self) -> f64 {
        self.entries.iter().map(|e| e.total_s).sum()
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:<42} {:>12} {:>8} {:>12}\n",
            "Phase", "Total [s]", "Calls", "Mean [s]"
        );
        for e in &self.entries {
            s.push_str(&format!(
                "{:<42} {:>12.6} {:>8} {:>12.6}\n",
                e.name,
                e.total_s,
                e.count,
                e.mean_s()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn records_accumulate_and_preserve_order() {
        let mut t = PhaseTimer::new();
        t.record("b_phase", 1.0);
        t.record("a_phase", 2.0);
        t.record("b_phase", 3.0);
        let r = t.local_report();
        assert_eq!(r.entries[0].name, "b_phase");
        assert_eq!(r.entries[0].total_s, 4.0);
        assert_eq!(r.entries[0].count, 2);
        assert_eq!(r.entries[1].name, "a_phase");
        assert_eq!(r.total_s(), 6.0);
        assert_eq!(r.get("a_phase").unwrap().mean_s(), 2.0);
    }

    #[test]
    fn region_measures_nonzero_time() {
        World::new(2).run(|c| {
            let mut t = PhaseTimer::new();
            let v = t.region(c, "work", || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                42
            });
            assert_eq!(v, 42);
            assert!(t.local_report().get("work").unwrap().total_s >= 0.004);
        });
    }

    #[test]
    fn report_max_takes_slowest_rank() {
        World::new(3).run(|c| {
            let mut t = PhaseTimer::new();
            // Rank r pretends to have spent r seconds.
            t.record("phase", c.rank() as f64);
            let r = t.report_max(c);
            assert_eq!(r.get("phase").unwrap().total_s, 2.0);
        });
    }

    #[test]
    fn table_renders_all_phases() {
        let mut t = PhaseTimer::new();
        t.record("Calc_Force", 1.5);
        t.record("Exchange_LET", 0.5);
        let table = t.local_report().to_table();
        assert!(table.contains("Calc_Force"));
        assert!(table.contains("Exchange_LET"));
    }
}
