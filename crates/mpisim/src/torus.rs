//! 3-D torus alltoallv (Iwasawa et al. 2019, used by the paper in §3.4).
//!
//! A flat `MPI_Alltoallv` over `p` ranks needs `p - 1` messages per rank. On
//! Fugaku the authors instead map the MPI ranks onto a 3-D torus matching the
//! TofuD topology and the 3-D domain decomposition, and run three staged
//! alltoallv operations — one along each axis — so each rank only ever talks
//! to the `p_x + p_y + p_z - 3 = O(p^{1/3})` ranks sharing one of its axis
//! lines. Payload items are forwarded twice, carrying their origin and final
//! destination with them.

use crate::comm::Comm;

/// Dimensions of the rank torus; `px * py * pz` must equal the communicator
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorusDims {
    pub px: usize,
    pub py: usize,
    pub pz: usize,
}

impl TorusDims {
    pub fn new(px: usize, py: usize, pz: usize) -> Self {
        assert!(px > 0 && py > 0 && pz > 0, "torus dims must be positive");
        TorusDims { px, py, pz }
    }

    /// Choose near-cubic dimensions for `p` ranks (largest factors first so
    /// `px >= py >= pz`), the way FDPS picks its 3-D process grid.
    pub fn for_size(p: usize) -> Self {
        assert!(p > 0);
        let mut best = (p, 1, 1);
        let mut best_score = usize::MAX;
        // Enumerate factor triples; p is a rank count, so this stays tiny.
        let mut a = 1;
        while a * a * a <= p {
            if p.is_multiple_of(a) {
                let rest = p / a;
                let mut b = a;
                while b * b <= rest {
                    if rest.is_multiple_of(b) {
                        let c = rest / b;
                        // Perimeter-like score: smaller means more cubic.
                        let score = (c - a) + (c - b);
                        if score < best_score {
                            best_score = score;
                            best = (c, b, a);
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        TorusDims::new(best.0, best.1, best.2)
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Rank of torus coordinates `(x, y, z)`.
    #[inline]
    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.px && y < self.py && z < self.pz);
        x + self.px * (y + self.py * z)
    }

    /// Torus coordinates of `rank`.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.size());
        let x = rank % self.px;
        let y = (rank / self.px) % self.py;
        let z = rank / (self.px * self.py);
        (x, y, z)
    }

    /// Messages per rank for one staged alltoallv (excluding self).
    pub fn messages_per_rank(&self) -> usize {
        (self.px - 1) + (self.py - 1) + (self.pz - 1)
    }
}

/// An item in flight through the torus: origin rank, destination rank, data.
struct Routed<T> {
    src: usize,
    dst: usize,
    data: Vec<T>,
}

impl Comm {
    /// Alltoallv routed through a 3-D torus in three axis-aligned stages.
    ///
    /// Semantically identical to [`Comm::alltoallv`] — `sends[j]` reaches rank
    /// `j`, the result is indexed by source — but each rank exchanges
    /// messages only with its `O(p^{1/3})` axis neighbours per stage.
    pub fn alltoallv_torus<T: Send + 'static>(
        &self,
        dims: TorusDims,
        sends: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(dims.size(), p, "torus dims must cover the communicator");
        assert_eq!(sends.len(), p, "alltoallv_torus: one send buffer per rank");
        let me = self.rank();
        let (_, my_y, my_z) = dims.coords_of(me);

        // Wrap outgoing data with routing headers.
        let mut in_flight: Vec<Routed<T>> = sends
            .into_iter()
            .enumerate()
            .map(|(dst, data)| Routed { src: me, dst, data })
            .collect();

        // Stage X: deliver every item to the rank in our (y, z) line whose x
        // matches the destination's x.
        in_flight = self.torus_stage(&dims, in_flight, |dst| {
            let (dx, _, _) = dims.coords_of(dst);
            dims.rank_of(dx, my_y, my_z)
        });
        // Stage Y: now x matches; fix y.
        let (my_x, _, _) = dims.coords_of(me);
        in_flight = self.torus_stage(&dims, in_flight, |dst| {
            let (_, dy, _) = dims.coords_of(dst);
            dims.rank_of(my_x, dy, my_z)
        });
        // Stage Z: x and y match; fix z, completing delivery.
        in_flight = self.torus_stage(&dims, in_flight, |dst| {
            let (_, _, dz) = dims.coords_of(dst);
            dims.rank_of(my_x, my_y, dz)
        });

        // Everything now has dst == me; sort by origin.
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for item in in_flight {
            debug_assert_eq!(item.dst, me);
            debug_assert!(out[item.src].is_empty(), "duplicate origin after routing");
            out[item.src] = item.data;
        }
        out
    }

    /// One staged exchange: bucket items by `hop(dst)` and alltoallv the
    /// buckets over the ranks reachable this stage. Implemented with direct
    /// point-to-point messages to exactly the axis line, so the message count
    /// is `axis_len - 1`, not `p - 1`.
    fn torus_stage<T: Send + 'static, H: Fn(usize) -> usize>(
        &self,
        dims: &TorusDims,
        items: Vec<Routed<T>>,
        hop: H,
    ) -> Vec<Routed<T>> {
        let me = self.rank();
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);

        // Bucket by next hop. Each bucket becomes one message: a vector of
        // (src, dst, data) triples so routing info survives the hop.
        let mut buckets: std::collections::BTreeMap<usize, Vec<(usize, usize, Vec<T>)>> =
            std::collections::BTreeMap::new();
        for it in items {
            buckets
                .entry(hop(it.dst))
                .or_default()
                .push((it.src, it.dst, it.data));
        }

        // The set of ranks we exchange with this stage: all ranks sharing the
        // axis line. Determine it from the hop function applied to every
        // possible destination — but that is just the image of `hop`, which
        // is the axis line through `me`. Compute it explicitly.
        let line = self.axis_line(dims, &hop);
        debug_assert!(line.contains(&me));

        let mut kept: Vec<Routed<T>> = Vec::new();
        if let Some(local) = buckets.remove(&me) {
            kept.extend(
                local
                    .into_iter()
                    .map(|(src, dst, data)| Routed { src, dst, data }),
            );
        }
        for &peer in &line {
            if peer == me {
                continue;
            }
            let payload = buckets.remove(&peer).unwrap_or_default();
            self.coll_send_vec(peer, tag, payload);
        }
        debug_assert!(buckets.is_empty(), "torus stage produced off-line hop");
        for &peer in &line {
            if peer == me {
                continue;
            }
            let incoming: Vec<(usize, usize, Vec<T>)> = self.recv_raw(peer, tag);
            kept.extend(
                incoming
                    .into_iter()
                    .map(|(src, dst, data)| Routed { src, dst, data }),
            );
        }
        kept
    }

    /// Ranks reachable by `hop` from here: the axis line through this rank.
    fn axis_line<H: Fn(usize) -> usize>(&self, dims: &TorusDims, hop: &H) -> Vec<usize> {
        let mut line: Vec<usize> = (0..dims.size()).map(hop).collect();
        line.sort_unstable();
        line.dedup();
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn dims_factorization_is_exact_and_cubic() {
        let d = TorusDims::for_size(64);
        assert_eq!((d.px, d.py, d.pz), (4, 4, 4));
        let d = TorusDims::for_size(12);
        assert_eq!(d.size(), 12);
        assert!(d.px >= d.py && d.py >= d.pz);
        let d = TorusDims::for_size(7); // prime: degenerate line
        assert_eq!((d.px, d.py, d.pz), (7, 1, 1));
    }

    #[test]
    fn rank_coord_roundtrip() {
        let d = TorusDims::new(3, 4, 5);
        for r in 0..d.size() {
            let (x, y, z) = d.coords_of(r);
            assert_eq!(d.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn torus_matches_flat_alltoallv() {
        let dims = TorusDims::new(2, 2, 2);
        World::new(8).run(|c| {
            let sends: Vec<Vec<u64>> = (0..8)
                .map(|j| {
                    (0..=j as u64)
                        .map(|k| (c.rank() * 100 + j) as u64 + k)
                        .collect()
                })
                .collect();
            let sends2 = sends.clone();
            let flat = c.alltoallv(sends);
            let routed = c.alltoallv_torus(dims, sends2);
            assert_eq!(flat, routed);
        });
    }

    #[test]
    fn torus_handles_empty_and_uneven_payloads() {
        let dims = TorusDims::new(3, 2, 1);
        World::new(6).run(|c| {
            let sends: Vec<Vec<u32>> = (0..6)
                .map(|j| {
                    if (c.rank() + j) % 2 == 0 {
                        vec![]
                    } else {
                        vec![c.rank() as u32; j + 1]
                    }
                })
                .collect();
            let expect = c.alltoallv(sends.clone());
            let got = c.alltoallv_torus(dims, sends);
            assert_eq!(expect, got);
        });
    }

    #[test]
    fn torus_message_count_is_sub_linear() {
        let dims = TorusDims::new(4, 4, 4);
        // 3 stages * (4-1) peers = 9 sends per rank versus 63 for flat.
        assert_eq!(dims.messages_per_rank(), 9);
        let (_, stats) = World::new(64).run_with_stats(|c| {
            let sends: Vec<Vec<u8>> = (0..64).map(|j| vec![j as u8]).collect();
            c.alltoallv_torus(dims, sends);
        });
        for s in &stats {
            assert_eq!(s.messages_sent, 9);
        }
    }
}
