//! # mpisim — an in-process message-passing runtime
//!
//! The paper's simulation (ASURA-FDPS-ML) runs on MPI across up to 148,900
//! Fugaku nodes. This crate reproduces the MPI *programming model* the code
//! depends on — blocking point-to-point messages, communicators that can be
//! split (the paper splits `MPI_COMM_WORLD` into *main* and *pool* nodes),
//! barriers, reductions, `MPI_Alltoallv`, and the 3-D torus
//! `O(p^{1/3})` alltoallv of Iwasawa et al. — as an in-process runtime where
//! each logical rank is an OS thread and messages travel through typed
//! mailboxes.
//!
//! Rank code is written in ordinary blocking MPI style:
//!
//! ```
//! use mpisim::World;
//!
//! let sums = World::new(4).run(|comm| {
//!     // Every rank contributes its rank id; allreduce sums them.
//!     comm.allreduce_f64(comm.rank() as f64, mpisim::ReduceOp::Sum)
//! });
//! assert!(sums.iter().all(|&s| s == 6.0));
//! ```
//!
//! All collectives are built on point-to-point messages (binomial trees,
//! dissemination barriers, ring allgathers), so message *counts* and
//! *volumes* — which [`CommStats`] records — follow the same asymptotics a
//! real MPI implementation would generate. That instrumentation is what the
//! performance model (`perfmodel`) calibrates against.

#![forbid(unsafe_code)]

pub mod collective;
pub mod comm;
pub mod mailbox;
pub mod message;
pub mod stats;
pub mod timing;
pub mod torus;
pub mod world;

pub use collective::ReduceOp;
pub use comm::Comm;
pub use stats::CommStats;
pub use timing::{PhaseReport, PhaseTimer};
pub use torus::TorusDims;
pub use world::World;
