//! Communication statistics.
//!
//! The performance model calibrates against message *counts* and *volumes*,
//! so every point-to-point send is accounted here. Counters are per-rank and
//! lock-free (plain atomics); `World::run` aggregates them at the end.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rank communication counters.
#[derive(Default)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives decompose into these).
    pub messages_sent: AtomicU64,
    /// Logical bytes sent.
    pub bytes_sent: AtomicU64,
    /// Number of collective operations entered.
    pub collectives: AtomicU64,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_collective(&self) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub collectives: u64,
}

impl StatsSnapshot {
    /// Element-wise sum, used to aggregate over ranks.
    pub fn merged(self, other: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            collectives: self.collectives + other.collectives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = CommStats::new();
        s.record_send(100);
        s.record_send(28);
        s.record_collective();
        let snap = s.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_sent, 128);
        assert_eq!(snap.collectives, 1);
    }

    #[test]
    fn merge_sums_fields() {
        let a = StatsSnapshot {
            messages_sent: 1,
            bytes_sent: 10,
            collectives: 2,
        };
        let b = StatsSnapshot {
            messages_sent: 3,
            bytes_sent: 5,
            collectives: 0,
        };
        let m = a.merged(b);
        assert_eq!(m.messages_sent, 4);
        assert_eq!(m.bytes_sent, 15);
        assert_eq!(m.collectives, 2);
    }
}
