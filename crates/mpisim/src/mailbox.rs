//! Per-rank mailbox: a condvar-guarded queue of [`Message`]s.
//!
//! Each world rank owns exactly one mailbox. Messages for every communicator
//! the rank belongs to land in the same queue; `recv` matches on
//! `(comm_id, src, tag)` the way MPI matches `(communicator, source, tag)`.

use crate::message::Message;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// A blocking, matching mailbox.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    signal: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message and wake any waiting receiver.
    pub fn post(&self, msg: Message) {
        let mut q = self.queue.lock();
        q.push_back(msg);
        // Receivers may be waiting for different (src, tag) matches, so wake
        // all of them; non-matching ones re-sleep immediately.
        drop(q);
        self.signal.notify_all();
    }

    /// Block until a message matching `(comm_id, src, tag)` is available and
    /// remove it from the queue. Messages from the same (src, tag) pair are
    /// delivered in posting order (MPI's non-overtaking guarantee).
    pub fn recv_match(&self, comm_id: u64, src: usize, tag: u64) -> Message {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|m| m.comm_id == comm_id && m.src == src && m.tag == tag)
            {
                return q.remove(pos).expect("position was just found");
            }
            self.signal.wait(&mut q);
        }
    }

    /// Non-blocking probe: would `recv_match` succeed immediately?
    pub fn probe(&self, comm_id: u64, src: usize, tag: u64) -> bool {
        self.queue
            .lock()
            .iter()
            .any(|m| m.comm_id == comm_id && m.src == src && m.tag == tag)
    }

    /// Number of queued messages (diagnostics only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn post_then_recv() {
        let mb = Mailbox::new();
        mb.post(Message::new(1, 0, 5, 8, 99u64));
        assert!(mb.probe(1, 0, 5));
        assert!(!mb.probe(1, 0, 6));
        let m = mb.recv_match(1, 0, 5);
        assert_eq!(m.take::<u64>(), 99);
        assert!(mb.is_empty());
    }

    #[test]
    fn matching_skips_non_matching() {
        let mb = Mailbox::new();
        mb.post(Message::new(1, 0, 5, 8, 1u64));
        mb.post(Message::new(1, 1, 5, 8, 2u64));
        let m = mb.recv_match(1, 1, 5);
        assert_eq!(m.take::<u64>(), 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn non_overtaking_order_preserved() {
        let mb = Mailbox::new();
        for i in 0..10u64 {
            mb.post(Message::new(0, 0, 1, 8, i));
        }
        for i in 0..10u64 {
            assert_eq!(mb.recv_match(0, 0, 1).take::<u64>(), i);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_post() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.recv_match(0, 0, 42).take::<u64>());
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.post(Message::new(0, 0, 42, 8, 7u64));
        assert_eq!(h.join().unwrap(), 7);
    }
}
