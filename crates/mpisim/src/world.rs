//! The world: spawns one OS thread per logical rank and wires up mailboxes.

use crate::comm::Comm;
use crate::mailbox::Mailbox;
use crate::stats::{CommStats, StatsSnapshot};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Shared state visible to every rank.
pub struct WorldShared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) stats: Vec<CommStats>,
    pub(crate) next_comm_id: AtomicU64,
}

/// A world of `size` logical ranks.
///
/// [`World::run`] spawns one thread per rank, hands each a [`Comm`] covering
/// the whole world (the `MPI_COMM_WORLD` analogue), and joins them, returning
/// each rank's result in rank order.
pub struct World {
    size: usize,
    stack_size: usize,
}

impl World {
    /// Create a world with `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "mpisim: world size must be positive");
        World {
            size,
            // Rank bodies are shallow; 2 MiB keeps hundreds of ranks cheap.
            stack_size: 2 << 20,
        }
    }

    /// Override the per-rank thread stack size (bytes).
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every rank and return the per-rank results in rank order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        self.run_with_stats(f).0
    }

    /// Like [`World::run`] but also return per-rank communication statistics.
    pub fn run_with_stats<R, F>(&self, f: F) -> (Vec<R>, Vec<StatsSnapshot>)
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        let shared = Arc::new(WorldShared {
            mailboxes: (0..self.size).map(|_| Mailbox::new()).collect(),
            stats: (0..self.size).map(|_| CommStats::new()).collect(),
            next_comm_id: AtomicU64::new(1),
        });
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let f = &f;

        let results: Vec<R> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    let members = Arc::clone(&members);
                    std::thread::Builder::new()
                        .name(format!("mpisim-rank-{rank}"))
                        .stack_size(self.stack_size)
                        .spawn_scoped(scope, move || {
                            let comm = Comm::world(shared, rank, members);
                            f(&comm)
                        })
                        .expect("mpisim: failed to spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mpisim: rank thread panicked"))
                .collect()
        });

        let stats = shared.stats.iter().map(|s| s.snapshot()).collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = World::new(5).run(|c| (c.rank(), c.size()));
        for (i, (r, s)) in ids.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::new(1).run(|c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn stats_capture_point_to_point_traffic() {
        let (_, stats) = World::new(2).run_with_stats(|c| {
            if c.rank() == 0 {
                c.send_vec(1, 7, vec![0u8; 100]);
            } else {
                let v: Vec<u8> = c.recv_vec(0, 7);
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(stats[0].messages_sent, 1);
        assert_eq!(stats[0].bytes_sent, 100);
        assert_eq!(stats[1].messages_sent, 0);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_world_rejected() {
        let _ = World::new(0);
    }
}
