//! Collective operations built from point-to-point messages.
//!
//! Algorithms mirror textbook MPI implementations so that message counts
//! scale the way a real library's would: dissemination barrier (`log p`
//! rounds), binomial-tree broadcast and reduce, linear gather + binomial
//! broadcast for allgather, and direct pairwise exchange for alltoallv.

use crate::comm::Comm;

/// Reduction operators for the `f64` convenience wrappers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl Comm {
    /// Block until every rank in the communicator has entered the barrier.
    /// Dissemination algorithm: `ceil(log2 p)` rounds of paired messages.
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            self.next_coll_seq();
            return;
        }
        let seq = self.next_coll_seq();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < p {
            let to = (self.rank() + dist) % p;
            let from = (self.rank() + p - dist) % p;
            let tag = self.coll_tag(seq, round);
            self.coll_send(to, tag, ());
            let () = self.recv_raw(from, tag);
            dist *= 2;
            round += 1;
        }
    }

    /// Broadcast `value` from `root` to all ranks (binomial tree).
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let p = self.size();
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        if p == 1 {
            return value.expect("bcast: root must supply a value");
        }
        let vrank = (self.rank() + p - root) % p;
        let mut have: Option<T> = if vrank == 0 {
            Some(value.expect("bcast: root must supply a value"))
        } else {
            None
        };

        // Receive from the parent in the binomial tree.
        if vrank != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask != 0 {
                    let vsrc = vrank & !mask;
                    let src = (vsrc + root) % p;
                    have = Some(self.recv_raw(src, tag));
                    break;
                }
                mask <<= 1;
            }
        }
        let val = have.expect("bcast: internal tree error");

        // Forward to children: all set bits above our lowest set bit.
        let lowest = if vrank == 0 {
            p.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lowest {
                let vdst = vrank | mask;
                if vdst != vrank && vdst < p {
                    let dst = (vdst + root) % p;
                    self.coll_send(dst, tag, val.clone());
                }
            }
            mask <<= 1;
        }
        val
    }

    /// Reduce `value` from all ranks to `root` with a binary operator
    /// (binomial tree). Returns `Some` on the root, `None` elsewhere.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let p = self.size();
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        let vrank = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // Send our partial result to the parent and drop out.
                let vdst = vrank & !mask;
                let dst = (vdst + root) % p;
                self.coll_send(dst, tag, acc);
                return None;
            }
            let vsrc = vrank | mask;
            if vsrc < p {
                let src = (vsrc + root) % p;
                let other: T = self.recv_raw(src, tag);
                acc = op(acc, other);
            }
            mask <<= 1;
        }
        if self.rank() == root {
            Some(acc)
        } else {
            // vrank 0 is always the root by construction.
            unreachable!("reduce: non-root survived the tree")
        }
    }

    /// Allreduce with a generic operator: reduce to rank 0, then broadcast.
    pub fn allreduce_with<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.bcast(0, reduced)
    }

    /// Allreduce a single `f64`.
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        self.allreduce_with(value, |a, b| op.apply(a, b))
    }

    /// Element-wise allreduce of an `f64` vector (all ranks must pass equal
    /// lengths).
    pub fn allreduce_vec_f64(&self, value: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        self.allreduce_with(value, |a, b| {
            assert_eq!(a.len(), b.len(), "allreduce_vec_f64: length mismatch");
            a.iter().zip(&b).map(|(&x, &y)| op.apply(x, y)).collect()
        })
    }

    /// Allreduce a single `u64` sum (particle-count bookkeeping).
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        self.allreduce_with(value, |a, b| a + b)
    }

    /// Allreduce a single `u64` maximum (world-consistent depth/level
    /// agreement, e.g. the block-timestep schedule reduction).
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        self.allreduce_with(value, |a, b| a.max(b))
    }

    /// Gather one value from every rank onto all ranks, indexed by rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let p = self.size();
        if p == 1 {
            self.next_coll_seq();
            return vec![value];
        }
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        // Linear gather onto rank 0, then binomial broadcast of the vector.
        if self.rank() == 0 {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[0] = Some(value);
            for _ in 1..p {
                // Accept in any arrival order: each sender uses its own slot tag.
                // We receive sequentially by source to keep matching simple.
            }
            #[allow(clippy::needless_range_loop)]
            for src in 1..p {
                out[src] = Some(self.recv_raw(src, tag));
            }
            let full: Vec<T> = out.into_iter().map(|o| o.unwrap()).collect();
            self.bcast(0, Some(full))
        } else {
            self.coll_send(0, tag, value);
            self.bcast::<Vec<T>>(0, None)
        }
    }

    /// Variable-size allgather: every rank contributes a vector; all ranks
    /// receive the concatenation indexed by source rank.
    pub fn allgatherv<T: Clone + Send + 'static>(&self, value: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size();
        if p == 1 {
            self.next_coll_seq();
            return vec![value];
        }
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        if self.rank() == 0 {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
            out.push(value);
            for src in 1..p {
                out.push(self.recv_raw(src, tag));
            }
            self.bcast(0, Some(out))
        } else {
            self.coll_send_vec(0, tag, value);
            self.bcast::<Vec<Vec<T>>>(0, None)
        }
    }

    /// All-to-all exchange of variable-size vectors: `sends[j]` goes to rank
    /// `j`; the result's `[i]` holds what rank `i` sent here. Direct pairwise
    /// algorithm — `p - 1` messages per rank, the flat `MPI_Alltoallv` the
    /// paper contrasts with the 3-D torus variant.
    pub fn alltoallv<T: Send + 'static>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(sends.len(), p, "alltoallv: need one send buffer per rank");
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);

        let mut recvs: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        // Keep our own contribution without a message.
        recvs[self.rank()] = Some(std::mem::take(&mut sends[self.rank()]));
        // Stagger the exchange so no single rank is flooded first.
        for step in 1..p {
            let dst = (self.rank() + step) % p;
            self.coll_send_vec(dst, tag, std::mem::take(&mut sends[dst]));
        }
        for step in 1..p {
            let src = (self.rank() + p - step) % p;
            recvs[src] = Some(self.recv_raw(src, tag));
        }
        recvs.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Exclusive prefix sum of `f64` values over ranks (`MPI_Exscan`):
    /// rank r receives the sum of values from ranks `0..r` (0 on rank 0).
    pub fn exscan_f64(&self, value: f64) -> f64 {
        let all = self.allgather(value);
        all[..self.rank()].iter().sum()
    }

    /// Scatter rows of `data` from `root`: rank `i` receives `data[i]`.
    pub fn scatterv<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        let p = self.size();
        let seq = self.next_coll_seq();
        let tag = self.coll_tag(seq, 0);
        if self.rank() == root {
            let mut rows = data.expect("scatterv: root must supply data");
            assert_eq!(rows.len(), p, "scatterv: one row per rank");
            let mut mine = Vec::new();
            for (dst, row) in rows.drain(..).enumerate().rev() {
                // Reverse drain keeps indices valid; own row kept locally.
                let (dst, row) = (dst, row);
                if dst == root {
                    mine = row;
                } else {
                    self.coll_send_vec(dst, tag, row);
                }
            }
            mine
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Combined send+receive with one partner each way (`MPI_Sendrecv`).
    pub fn sendrecv<T: Send + 'static, U: 'static>(
        &self,
        dst: usize,
        send: T,
        src: usize,
        tag: u64,
    ) -> U {
        self.send(dst, tag, send);
        self.recv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        World::new(7).run(|c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must have incremented.
            assert_eq!(before.load(Ordering::SeqCst), 7);
        });
    }

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            World::new(5).run(|c| {
                let v = if c.rank() == root {
                    Some(vec![root as u64, 42])
                } else {
                    None
                };
                let got = c.bcast(root, v);
                assert_eq!(got, vec![root as u64, 42]);
            });
        }
    }

    #[test]
    fn reduce_sums_on_root_only() {
        let out = World::new(6).run(|c| c.reduce(2, c.rank() as u64, |a, b| a + b));
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(*r, Some(15));
            } else {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn allreduce_min_max_sum() {
        World::new(5).run(|c| {
            let x = (c.rank() + 1) as f64;
            assert_eq!(c.allreduce_f64(x, ReduceOp::Sum), 15.0);
            assert_eq!(c.allreduce_f64(x, ReduceOp::Min), 1.0);
            assert_eq!(c.allreduce_f64(x, ReduceOp::Max), 5.0);
        });
    }

    #[test]
    fn allreduce_u64_max() {
        World::new(5).run(|c| {
            let x = (c.rank() as u64 + 3) * 7;
            assert_eq!(c.allreduce_max_u64(x), 49);
        });
    }

    #[test]
    fn allreduce_vec_elementwise() {
        World::new(3).run(|c| {
            let v = vec![c.rank() as f64, 1.0];
            let s = c.allreduce_vec_f64(v, ReduceOp::Sum);
            assert_eq!(s, vec![3.0, 3.0]);
        });
    }

    #[test]
    fn allgather_is_rank_indexed() {
        World::new(6).run(|c| {
            let all = c.allgather(c.rank() as u32 * 10);
            let expect: Vec<u32> = (0..6).map(|r| r * 10).collect();
            assert_eq!(all, expect);
        });
    }

    #[test]
    fn allgatherv_variable_lengths() {
        World::new(4).run(|c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            let all = c.allgatherv(mine);
            for (src, v) in all.iter().enumerate() {
                assert_eq!(v.len(), src);
            }
        });
    }

    #[test]
    fn alltoallv_exchanges_addressed_data() {
        World::new(5).run(|c| {
            // Rank i sends [i*10 + j] to rank j.
            let sends: Vec<Vec<u64>> = (0..5).map(|j| vec![(c.rank() * 10 + j) as u64]).collect();
            let recvs = c.alltoallv(sends);
            for (src, v) in recvs.iter().enumerate() {
                assert_eq!(v, &vec![(src * 10 + c.rank()) as u64]);
            }
        });
    }

    #[test]
    fn alltoallv_with_empty_buffers() {
        World::new(4).run(|c| {
            // Only rank 0 sends anything, and only to rank 3.
            let mut sends: Vec<Vec<u8>> = vec![vec![]; 4];
            if c.rank() == 0 {
                sends[3] = vec![7, 8, 9];
            }
            let recvs = c.alltoallv(sends);
            if c.rank() == 3 {
                assert_eq!(recvs[0], vec![7, 8, 9]);
            }
            let total: usize = recvs.iter().map(|v| v.len()).sum();
            if c.rank() != 3 {
                assert_eq!(total, 0);
            }
        });
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // Regression guard for tag-sequencing: many collectives back to back.
        World::new(4).run(|c| {
            for i in 0..20u64 {
                let s = c.allreduce_f64(i as f64, ReduceOp::Sum);
                assert_eq!(s, 4.0 * i as f64);
                c.barrier();
                let g = c.allgather(i);
                assert_eq!(g, vec![i; 4]);
            }
        });
    }

    #[test]
    fn exscan_is_exclusive_prefix_sum() {
        World::new(5).run(|c| {
            let pre = c.exscan_f64((c.rank() + 1) as f64);
            // Rank r gets the sum of the values on ranks 0..r, i.e. 1..=r.
            let expect = (1..=c.rank()).map(|x| x as f64).sum::<f64>();
            assert_eq!(pre, expect, "rank {}", c.rank());
        });
    }

    #[test]
    fn scatterv_delivers_rows() {
        World::new(4).run(|c| {
            let data = if c.rank() == 1 {
                Some((0..4).map(|r| vec![r as u64 * 10, r as u64]).collect())
            } else {
                None
            };
            let row = c.scatterv(1, data);
            assert_eq!(row, vec![c.rank() as u64 * 10, c.rank() as u64]);
        });
    }

    #[test]
    fn sendrecv_ring_rotates_values() {
        World::new(4).run(|c| {
            let p = c.size();
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            let got: usize = c.sendrecv(right, c.rank(), left, 17);
            assert_eq!(got, left);
        });
    }
}
