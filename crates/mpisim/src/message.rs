//! Message envelope carried between ranks.
//!
//! Payloads are moved (not serialized): a message owns a `Box<dyn Any + Send>`
//! that the receiver downcasts back to the concrete type. This keeps the
//! in-process transport zero-copy while preserving MPI's typed send/recv
//! discipline: a `recv::<T>` on a message whose payload is not `T` is a
//! programming error and panics, exactly like an MPI datatype mismatch.

use std::any::Any;

/// Tag values at or above this bound are reserved for collectives.
pub const COLLECTIVE_TAG_BASE: u64 = 1 << 40;

/// A tagged, typed message envelope.
pub struct Message {
    /// Identifier of the communicator this message belongs to.
    pub comm_id: u64,
    /// Sender's rank *within that communicator*.
    pub src: usize,
    /// Message tag. User tags must be below [`COLLECTIVE_TAG_BASE`].
    pub tag: u64,
    /// Approximate wire size in bytes (what real MPI would transfer).
    pub bytes: usize,
    /// The payload, to be downcast by the receiver.
    pub payload: Box<dyn Any + Send>,
}

impl Message {
    /// Wrap `data` into an envelope. `bytes` is the logical wire size.
    pub fn new<T: Send + 'static>(
        comm_id: u64,
        src: usize,
        tag: u64,
        bytes: usize,
        data: T,
    ) -> Self {
        Message {
            comm_id,
            src,
            tag,
            bytes,
            payload: Box::new(data),
        }
    }

    /// Downcast the payload to `T`, consuming the message.
    ///
    /// # Panics
    /// Panics if the payload is not a `T` (datatype mismatch).
    pub fn take<T: 'static>(self) -> T {
        *self
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("mpisim: datatype mismatch on recv (tag {})", self.tag))
    }
}

/// Logical wire size of a slice of `T`.
#[inline]
pub fn slice_bytes<T>(len: usize) -> usize {
    len * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_typed_payload() {
        let m = Message::new(0, 3, 7, 16, vec![1u64, 2]);
        assert_eq!(m.src, 3);
        assert_eq!(m.tag, 7);
        assert_eq!(m.bytes, 16);
        let v: Vec<u64> = m.take();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn mismatched_downcast_panics() {
        let m = Message::new(0, 0, 1, 8, 42u64);
        let _: String = m.take();
    }

    #[test]
    fn slice_bytes_counts_element_size() {
        assert_eq!(slice_bytes::<f64>(10), 80);
        assert_eq!(slice_bytes::<u8>(3), 3);
        assert_eq!(slice_bytes::<[f64; 3]>(2), 48);
    }
}
