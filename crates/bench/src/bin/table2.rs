//! Table 2: the list of measurement runs.

use asura_core::runs::TABLE2;
use bench::sci;

fn main() {
    println!("Table 2: list of runs");
    println!(
        "{:<16} {:>16} {:>7} {:>9} {:>7} {:>9} {:>7} {:>9} {:>9} {:>14}",
        "Run",
        "N_node",
        "m_DM",
        "N_DM",
        "m_star",
        "N_star",
        "m_gas",
        "N_gas",
        "M_tot",
        "N_tot/node"
    );
    let mut csv = String::from(
        "run,nodes_max,nodes_min,m_dm,n_dm,m_star,n_star,m_gas,n_gas,m_tot,n_per_node_lo,n_per_node_hi\n",
    );
    for r in &TABLE2 {
        println!(
            "{:<16} {:>16} {:>7} {:>9} {:>7} {:>9} {:>7} {:>9} {:>9} {:>14}",
            r.name,
            format!("{}-{}", r.nodes.0, r.nodes.1),
            sci(r.m_dm),
            sci(r.n_dm),
            sci(r.m_star),
            sci(r.n_star),
            sci(r.m_gas),
            sci(r.n_gas),
            sci(r.m_tot),
            format!("{}-{}", sci(r.n_per_node.0), sci(r.n_per_node.1)),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.name,
            r.nodes.0,
            r.nodes.1,
            r.m_dm,
            r.n_dm,
            r.m_star,
            r.n_star,
            r.m_gas,
            r.n_gas,
            r.m_tot,
            r.n_per_node.0,
            r.n_per_node.1
        ));
    }
    bench::write_artifact("table2.csv", &csv);
}
