//! §5.3 time-to-solution: the surrogate scheme's fixed global timestep vs
//! the conventional CFL-adaptive scheme.
//!
//! Runs the same SN-in-a-cloud setup under both schemes and reports the
//! step-count ratio (paper: the conventional timestep shrank to 200 yr,
//! 10x below the 2,000 yr global step) plus the extrapolated 113x
//! time-to-solution estimate of §5.3.

use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cloud_with_sn(dt: f64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = Vec::new();
    let mut id = 0u64;
    // Dense molecular cloud: ~1 M_sun particles at ~1 M_sun/pc^3.
    for _ in 0..1500 {
        out.push(Particle::gas(
            id,
            Vec3::new(
                rng.gen_range(-6.0..6.0),
                rng.gen_range(-6.0..6.0),
                rng.gen_range(-6.0..6.0),
            ),
            Vec3::ZERO,
            1.0,
            0.05, // cold (~60 K)
            1.2,
        ));
        id += 1;
    }
    // A 10 M_sun star that explodes within the first couple of steps.
    let life = astro::lifetime::stellar_lifetime_myr(10.0);
    out.push(Particle::star(
        id,
        Vec3::ZERO,
        Vec3::ZERO,
        10.0,
        dt * 1.5 - life,
    ));
    out
}

fn main() {
    let dt_global = 2.0e-3; // the paper's 2,000 yr
    let t_target = 0.06; // Myr of physical time to integrate

    let run = |scheme: Scheme| -> (u64, f64, f64) {
        let cfg = SimConfig {
            scheme,
            dt_global,
            pool_latency_steps: 10,
            cooling: false,
            star_formation: false,
            eps: 0.5,
            n_ngb: 24,
            dt_min: 1.0e-5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, cloud_with_sn(dt_global), 3);
        let wall = std::time::Instant::now();
        while sim.time < t_target && sim.stats.steps < 5000 {
            sim.step();
        }
        (
            sim.stats.steps,
            sim.stats.dt_min_seen,
            wall.elapsed().as_secs_f64(),
        )
    };

    println!("Time-to-solution comparison (paper 5.3), integrating {t_target} Myr:");
    let (steps_s, dtmin_s, wall_s) = run(Scheme::Surrogate);
    println!(
        "  surrogate:    {steps_s:>5} steps, min dt = {:.0} yr, wall {wall_s:.2} s",
        dtmin_s * 1e6
    );
    let (steps_c, dtmin_c, wall_c) = run(Scheme::Conventional);
    println!(
        "  conventional: {steps_c:>5} steps, min dt = {:.0} yr, wall {wall_c:.2} s",
        dtmin_c * 1e6
    );
    let step_ratio = steps_c as f64 / steps_s as f64;
    println!(
        "  step-count ratio: {step_ratio:.1}x (paper: ~10x from the 2,000/200 yr timestep ratio)"
    );

    // The paper's 113x estimate: scale the GIZMO reference point
    // (1.5e8 particles, 0.0125 h per Myr at its scaling ceiling) to 3e11
    // particles with the adaptive-timestep N^{4/3} law, against our 2.78 h
    // per Myr at 148,896 nodes.
    let gizmo_hours_per_myr = 0.0125;
    let n_ours: f64 = 3.0e11;
    let n_gizmo: f64 = 1.5e8;
    let conventional_hours = (n_ours / n_gizmo).powf(4.0 / 3.0) * gizmo_hours_per_myr;
    // 500 steps of 2,000 yr per Myr at 20 s/step = 10,000 s = 2.78 h.
    let ours_hours = 10_000.0 / 3600.0;
    println!(
        "  extrapolated time-to-solution for 1 Myr at N = 3e11: conventional {conventional_hours:.0} h vs surrogate {ours_hours:.2} h => {:.0}x speedup (paper: 113x)",
        conventional_hours / ours_hours
    );

    let mut csv = String::from("scheme,steps,dt_min_yr,wall_s\n");
    csv.push_str(&format!(
        "surrogate,{steps_s},{:.1},{wall_s:.3}\n",
        dtmin_s * 1e6
    ));
    csv.push_str(&format!(
        "conventional,{steps_c},{:.1},{wall_c:.3}\n",
        dtmin_c * 1e6
    ));
    bench::write_artifact("tts.csv", &csv);
}
