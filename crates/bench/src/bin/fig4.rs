//! Figure 4: an example of the domain decomposition sliced at y = 0.
//!
//! A Model-MW realization is decomposed into a 3-D process grid; the
//! domains crossing the y = 0 plane are dumped as rectangles in (x, z).
//! The centrally concentrated disk produces the narrow central domains the
//! paper shows.

use fdps::domain::DomainDecomposition;
use fdps::{BBox, Vec3};
use galactic_ic::GalaxyModel;

fn main() {
    let model = GalaxyModel::mw();
    // Sample-scale realization: the decomposition only needs the shape.
    let real = model.realize(60_000, 40_000, 20_000, 42);
    let mut samples: Vec<Vec3> = Vec::new();
    for set in [&real.dm, &real.stars, &real.gas] {
        samples.extend(set.pos.iter().map(|p| Vec3::new(p[0], p[1], p[2])));
    }
    let global = BBox::of_points(&samples);
    let grid = (8, 8, 4);
    let dd = DomainDecomposition::from_samples(grid, &mut samples, global);

    println!(
        "Figure 4: domain decomposition of Model MW on a {}x{}x{} grid, slice at y=0",
        grid.0, grid.1, grid.2
    );
    let mut csv = String::from("rank,x_lo_pc,x_hi_pc,z_lo_pc,z_hi_pc\n");
    let mut crossing = 0;
    let mut widths: Vec<(f64, f64)> = Vec::new(); // (|x_center|, width)
    for r in 0..dd.len() {
        let b = dd.domain_box(r);
        if b.lo.y <= 0.0 && b.hi.y > 0.0 {
            crossing += 1;
            csv.push_str(&format!(
                "{r},{:.1},{:.1},{:.1},{:.1}\n",
                b.lo.x, b.hi.x, b.lo.z, b.hi.z
            ));
            widths.push((b.center().x.abs(), b.extent().x));
        }
    }
    println!("{crossing} domains cross the y=0 plane");

    // The paper's visual signature: central domains are much narrower.
    widths.sort_by(|a, b| a.0.total_cmp(&b.0));
    let inner_w: f64 = widths[..4].iter().map(|w| w.1).sum::<f64>() / 4.0;
    let outer_w: f64 = widths[widths.len() - 4..].iter().map(|w| w.1).sum::<f64>() / 4.0;
    println!(
        "mean central domain width: {inner_w:.0} pc; mean edge domain width: {outer_w:.0} pc \
         (ratio {:.1}x — the concentration the paper's Fig. 4 shows)",
        outer_w / inner_w
    );
    bench::write_artifact("fig4.csv", &csv);
}
