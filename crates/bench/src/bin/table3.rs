//! Table 3: breakdown of calculation time and performance at the paper's
//! three measurement points (Fugaku 148,896 nodes; Rusty 193; Miyabi 1024).

use perfmodel::{Machine, RunPoint, StepModel};

fn print_breakdown(machine: Machine, run: RunPoint, peak_pf: f64) {
    let model = StepModel::new(machine);
    let b = model.step(&run);
    println!(
        "\n{} — {} nodes (peak {peak_pf} PFLOPS), N = {:.2e}",
        machine.name, run.p, run.n_tot
    );
    println!(
        "{:<32} {:>12} {:>14} {:>10}",
        "Measured item", "Wall [s]", "FLOP [PFLOP]", "PFLOPS"
    );
    let mut total_s = 0.0;
    let mut total_f = 0.0;
    for ph in &b.phases {
        let sys_flop = ph.flops * run.p as f64 / 1e15;
        let pflops = if ph.seconds > 0.0 {
            sys_flop / ph.seconds
        } else {
            0.0
        };
        println!(
            "{:<32} {:>12.3} {:>14.4} {:>10.3}",
            ph.name, ph.seconds, sys_flop, pflops
        );
        total_s += ph.seconds;
        total_f += sys_flop;
    }
    println!(
        "{:<32} {:>12.3} {:>14.4} {:>10.3}  (efficiency {:.2}%)",
        "Total per step",
        total_s,
        total_f,
        total_f / total_s,
        100.0 * total_f / total_s / peak_pf
    );
}

fn main() {
    println!("Table 3: breakdown of calculation time and performance");
    print_breakdown(Machine::fugaku(), RunPoint::weak_mw2m_anchor(), 915.0);
    print_breakdown(
        Machine::rusty(),
        RunPoint {
            n_tot: 2.3e11,
            gas_frac: 0.163,
            p: 193,
            n_g: 2048,
        },
        2.43,
    );
    print_breakdown(
        Machine::miyabi(),
        RunPoint {
            n_tot: 2.05e10,
            gas_frac: 0.163,
            p: 1024,
            n_g: 65536,
        },
        68.5,
    );
    println!(
        "\nPaper anchors: Fugaku total 20.34 s at 8.20 PFLOPS (0.90% efficiency);\n\
         gravity phase 1.63 s at 90.2 PFLOPS; Rusty gravity 0.863 PFLOPS;\n\
         Miyabi gravity 5.60 PFLOPS."
    );
}
