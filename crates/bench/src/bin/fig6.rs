//! Figure 6: weak- and strong-scaling on Fugaku (wall-clock time per step
//! vs main processes, with the per-phase breakdown).
//!
//! The large-scale curves come from the calibrated performance model (we
//! have no Fugaku; see DESIGN.md); a small-scale *executed* run over mpisim
//! ranks cross-checks the phase structure.

use asura_core::dist::{run_distributed, DistConfig, PredictorKind};
use asura_core::{Particle, Scheme, SimConfig};
use fdps::exchange::Routing;
use fdps::Vec3;
use perfmodel::scaling::node_sweep;
use perfmodel::{strong_scaling, weak_scaling, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let fugaku = Machine::fugaku();

    // --- Weak scaling: 2M particles per node, 128 -> 148,896 nodes -------
    let nodes = node_sweep(128, 148_896);
    let weak = weak_scaling(fugaku, 2.0e6, 0.163, 2048, &nodes);
    println!("Figure 6 (left): weak scaling, Fugaku, 2M particles/node");
    println!("{:>8} {:>12}", "nodes", "t/step [s]");
    for (p, t) in weak.totals() {
        println!("{p:>8} {t:>12.3}");
    }
    println!(
        "weak efficiency 128 -> 148,896 nodes: {:.2} (paper: 0.54 after log N correction)",
        weak.efficiency(true)
    );
    bench::write_artifact("fig6_weak.csv", &weak.to_csv());

    // --- Strong scaling: three particle-count sets as in the paper -------
    println!("\nFigure 6 (right): strong scaling, Fugaku");
    for (label, n_tot, lo, hi) in [
        ("strongMW (1.5e11)", 1.5e11, 67_680, 148_896),
        ("strongMWs (4.75e10)", 4.75e10, 4_096, 40_608),
        ("strongMWm (5.1e9)", 5.1e9, 128, 1_024),
    ] {
        let curve = strong_scaling(fugaku, n_tot, 0.163, 2048, &node_sweep(lo, hi));
        println!("  {label}:");
        for (p, t) in curve.totals() {
            println!("    {p:>8} nodes: {t:>10.3} s/step");
        }
        bench::write_artifact(
            &format!(
                "fig6_strong_{}.csv",
                label.split_whitespace().next().expect("label")
            ),
            &curve.to_csv(),
        );
    }

    // --- Executed cross-check over mpisim ranks ---------------------------
    println!("\nExecuted cross-check (mpisim, this host): weak scaling 1 -> 8 main ranks");
    let mut rng = StdRng::seed_from_u64(5);
    let per_rank = 400;
    let mut csv = String::from("main_ranks,total_s_per_step\n");
    for grid in [(1usize, 1usize, 1usize), (2, 1, 1), (2, 2, 1), (2, 2, 2)] {
        let n_main = grid.0 * grid.1 * grid.2;
        let n = per_rank * n_main;
        let ic: Vec<Particle> = (0..n)
            .map(|i| {
                Particle::gas(
                    i as u64,
                    Vec3::new(
                        rng.gen_range(-50.0..50.0),
                        rng.gen_range(-50.0..50.0),
                        rng.gen_range(-10.0..10.0),
                    ),
                    Vec3::ZERO,
                    1.0,
                    1.0,
                    5.0,
                )
            })
            .collect();
        let cfg = DistConfig {
            grid,
            n_pool: 1,
            routing: Routing::Torus,
            sim: SimConfig {
                scheme: Scheme::Surrogate,
                cooling: false,
                star_formation: false,
                n_ngb: 16,
                eps: 2.0,
                ..Default::default()
            },
            steps: 3,
            predictor: PredictorKind::SedovOverlay,
            snapshot_every: 0,
        };
        let report = run_distributed(&cfg, &ic).expect("dist run");
        let t = report.phases.total_s() / report.steps as f64;
        println!("  {n_main} main ranks, {n} particles: {t:.4} s/step");
        csv.push_str(&format!("{n_main},{t:.6}\n"));
    }
    bench::write_artifact("fig6_executed_weak.csv", &csv);
}
