//! Table 1: state-of-the-art hydrodynamics simulations of isolated disk
//! galaxies, with this work's configuration in the final row.

use asura_core::runs::TABLE1;
use bench::sci;

fn main() {
    println!("Table 1: state-of-the-art isolated disk-galaxy simulations");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:<9}",
        "Paper", "N_gas", "m_gas", "N_star", "m_star", "N_DM", "M_tot", "N_tot", "Code"
    );
    let mut csv = String::from("paper,n_gas,m_gas,n_star,m_star,n_dm,m_tot,n_tot,code\n");
    for r in &TABLE1 {
        println!(
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:<9}",
            r.paper,
            sci(r.n_gas),
            sci(r.m_gas),
            sci(r.n_star),
            sci(r.m_star),
            sci(r.n_dm),
            sci(r.m_tot),
            sci(r.n_tot),
            r.code
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.paper, r.n_gas, r.m_gas, r.n_star, r.m_star, r.n_dm, r.m_tot, r.n_tot, r.code
        ));
    }
    let ours = TABLE1.last().expect("non-empty table");
    let best_prior = TABLE1[..TABLE1.len() - 1]
        .iter()
        .map(|r| r.n_tot)
        .fold(0.0, f64::max);
    println!();
    println!(
        "This work / best prior particle count: {:.0}x (paper claims ~500x)",
        ours.n_tot / best_prior
    );
    bench::write_artifact("table1.csv", &csv);
}
