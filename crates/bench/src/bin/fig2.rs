//! Figure 2: mass resolution vs total mass for DM (left) and gas (right),
//! with constant-N diagonals and the billion-particle barrier.

use asura_core::runs::TABLE1;

fn main() {
    println!("Figure 2 data: resolution vs total mass plane");

    // Scatter points (one per simulation).
    let mut csv = String::from("panel,paper,total_mass_msun,resolution_msun,n\n");
    for r in &TABLE1 {
        // DM panel: m_DM approximated by M_tot minus baryons over N_DM.
        let m_baryon = r.n_gas * r.m_gas + r.n_star * r.m_star;
        let m_dm_tot = (r.m_tot - m_baryon).max(r.m_tot * 0.5);
        let m_dm = m_dm_tot / r.n_dm;
        csv.push_str(&format!(
            "dm,{},{:.4e},{:.4e},{:.4e}\n",
            r.paper, m_dm_tot, m_dm, r.n_dm
        ));
        // Gas panel.
        let m_gas_tot = r.n_gas * r.m_gas;
        csv.push_str(&format!(
            "gas,{},{:.4e},{:.4e},{:.4e}\n",
            r.paper, m_gas_tot, r.m_gas, r.n_gas
        ));
    }

    // Constant-N diagonals: m = M / N for N in {1e6, 1e8, 1e10} and the
    // billion-particle barrier N = 1e9.
    for n in [1e6f64, 1e8, 1e9, 1e10] {
        for exp in 14..25 {
            let m_tot = 10f64.powf(exp as f64 * 0.5);
            let label = if n == 1e9 { "barrier" } else { "diagonal" };
            csv.push_str(&format!(
                "{label}_N{n:.0e},line,{m_tot:.4e},{:.4e},{n}\n",
                m_tot / n
            ));
        }
    }

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "Paper", "M_gas,tot", "m_gas", "M_dm,tot", "m_dm"
    );
    for r in &TABLE1 {
        let m_baryon = r.n_gas * r.m_gas + r.n_star * r.m_star;
        let m_dm_tot = (r.m_tot - m_baryon).max(r.m_tot * 0.5);
        println!(
            "{:<28} {:>12.3e} {:>12.3} {:>12.3e} {:>12.3}",
            r.paper,
            r.n_gas * r.m_gas,
            r.m_gas,
            m_dm_tot,
            m_dm_tot / r.n_dm
        );
    }
    let ours = TABLE1.last().expect("rows");
    println!();
    println!(
        "This work sits below the one-billion barrier line: N_tot = {:.1e} > 1e9",
        ours.n_tot
    );
    bench::write_artifact("fig2.csv", &csv);
}
