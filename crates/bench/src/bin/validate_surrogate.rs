//! Surrogate validation (paper §3.3 / Fig. 5 discussion): the surrogate's
//! SN-region predictions are compared against the reference physics on
//! energy, momentum, and the density/temperature PDFs.
//!
//! Three predictors are compared on the same turbulent SN region:
//! * the analytic Sedov overlay (the training target),
//! * a U-Net trained briefly on synthetic Sedov-in-turbulence data,
//! * an untrained U-Net (sanity floor).

use astro::turbulence::TurbulentField;
use astro::units::E_SN;
use asura_core::diagnostics::{histogram_distance, log_histogram};
use asura_core::pool::{PoolPredictor, SedovOverlayPredictor, UNetPredictor};
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate::training::{make_dataset, TrainingSetup};
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

fn turbulent_region(n: usize, seed: u64) -> Vec<GasParticle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let turb = TurbulentField::new(&mut rng, 60.0, 3, 4.0, 5.0);
    (0..n)
        .map(|i| {
            let pos = Vec3::new(
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-30.0..30.0),
            );
            let v = turb.velocity([pos.x, pos.y, pos.z]);
            GasParticle {
                pos,
                vel: Vec3::new(v[0], v[1], v[2]),
                mass: 1.0,
                temp: 100.0,
                h: 3.0,
                id: i as u64,
            }
        })
        .collect()
}

fn audit(name: &str, before: &[GasParticle], after: &[GasParticle]) -> (f64, f64) {
    let mass = |ps: &[GasParticle]| ps.iter().map(|p| p.mass).sum::<f64>();
    let ke = |ps: &[GasParticle]| ps.iter().map(|p| 0.5 * p.mass * p.vel.norm2()).sum::<f64>();
    let mom = |ps: &[GasParticle]| {
        ps.iter()
            .fold(Vec3::ZERO, |acc, p| acc + p.vel * p.mass)
            .norm()
    };
    let dm = (mass(after) - mass(before)).abs() / mass(before);
    let dke = ke(after) - ke(before);
    println!(
        "  {name:<22} mass error {dm:.2e}; kinetic energy gained {:.3e} (E_SN = {:.3e}); |momentum| {:.3e}",
        dke,
        E_SN,
        mom(after)
    );
    let t_hist = log_histogram(
        &after.iter().map(|p| (p.temp, p.mass)).collect::<Vec<_>>(),
        0.0,
        9.0,
        36,
    );
    let hot_frac: f64 = after.iter().filter(|p| p.temp > 1e5).count() as f64 / after.len() as f64;
    println!("  {name:<22} hot (T > 1e5 K) fraction: {hot_frac:.3}",);
    (histogram_sum(&t_hist), hot_frac)
}

fn histogram_sum(h: &[f64]) -> f64 {
    h.iter().sum()
}

fn main() {
    let region = turbulent_region(1500, 42);
    println!(
        "Surrogate validation on a turbulent (60 pc)^3 region, {} particles, 0.1 Myr horizon\n",
        region.len()
    );

    // Reference: analytic Sedov overlay.
    let reference = SedovOverlayPredictor.predict(Vec3::ZERO, E_SN, 0.1, &region);
    audit("Sedov overlay (ref)", &region, &reference);

    // Trained U-Net (small; a few epochs on synthetic pairs).
    let mut rng = StdRng::seed_from_u64(7);
    let setup = TrainingSetup {
        grid_n: 16,
        ..Default::default()
    };
    println!("\ntraining a 16^3 U-Net on {} synthetic SN pairs ...", 6);
    let data = make_dataset(&mut rng, &setup, 6);
    let mut model = SurrogateModel::new(SurrogateConfig {
        grid_n: 16,
        side: 60.0,
        base_features: 4,
        seed: 1,
    });
    let losses = model.train(&data, 8, 3e-3);
    println!(
        "  loss: {:.4} -> {:.4} over {} epochs",
        losses[0],
        losses.last().expect("epochs"),
        losses.len()
    );
    let trained = UNetPredictor::new(model, 9).predict(Vec3::ZERO, E_SN, 0.1, &region);
    audit("U-Net (trained)", &region, &trained);

    // Untrained floor.
    let untrained = UNetPredictor::untrained_small(3).predict(Vec3::ZERO, E_SN, 0.1, &region);
    audit("U-Net (untrained)", &region, &untrained);

    // PDF comparison: trained U-Net vs reference.
    let pdf = |ps: &[GasParticle]| {
        log_histogram(
            &ps.iter().map(|p| (p.temp, p.mass)).collect::<Vec<_>>(),
            0.0,
            9.0,
            36,
        )
    };
    let d_trained = histogram_distance(&pdf(&reference), &pdf(&trained));
    let d_untrained = histogram_distance(&pdf(&reference), &pdf(&untrained));
    println!(
        "\ntemperature-PDF L1 distance to reference: trained {d_trained:.3}, untrained {d_untrained:.3}"
    );
    println!("(paper: the surrogate's density/temperature PDFs are indistinguishable from direct integration)");

    let mut csv = String::from("predictor,pdf_distance\n");
    csv.push_str(&format!(
        "trained,{d_trained:.4}\nuntrained,{d_untrained:.4}\n"
    ));
    bench::write_artifact("validate_surrogate.csv", &csv);
}
