//! Table 4: asymptotic single-core performance of the interaction kernels.
//!
//! Prints the paper's per-architecture numbers (our machine models carry
//! them) and *measures* the same kernels on this host: counted operations
//! divided by wall time, exactly the paper's §4.3 methodology.

use perfmodel::calibrate::measure_gravity;
use perfmodel::Machine;
use pikg::kernels::{PAPER_DENSITY_OPS, PAPER_GRAVITY_OPS, PAPER_HYDRO_OPS};
use pikg::FlopPolicy;

fn main() {
    println!("Table 4: asymptotic single-core interaction-kernel performance\n");
    println!(
        "{:<24} {:>6} {:>22} {:>22} {:>22}",
        "Kernel", "#ops", "Fugaku (A64FX SVE)", "Rusty (AVX512)", "Miyabi (GH200)"
    );
    let f = Machine::fugaku();
    let r = Machine::rusty();
    let m = Machine::miyabi();
    let row = |name: &str, ops: usize, ef: f64, er: f64, em: f64| {
        let per_core =
            |mach: &Machine, eff: f64| mach.peak_sp_node / mach.cores_per_node as f64 * eff / 1e9;
        println!(
            "{:<24} {:>6} {:>14.1} GF {:>4.1}% {:>14.1} GF {:>4.1}% {:>14.1} GF {:>4.1}%",
            name,
            ops,
            per_core(&f, ef),
            ef * 100.0,
            per_core(&r, er),
            er * 100.0,
            per_core(&m, em) * m.cores_per_node as f64, // GPU: whole card
            em * 100.0,
        );
    };
    row(
        "Gravity",
        PAPER_GRAVITY_OPS,
        f.eff_gravity,
        r.eff_gravity,
        m.eff_gravity,
    );
    row(
        "Hydro density/pressure",
        PAPER_DENSITY_OPS,
        f.eff_density,
        r.eff_density,
        m.eff_density,
    );
    row(
        "Hydro force",
        PAPER_HYDRO_OPS,
        f.eff_hydro,
        r.eff_hydro,
        m.eff_hydro,
    );

    // DSL cross-check: the PIKG kernels' counted costs.
    println!("\nPIKG DSL counted operations (paper policy):");
    for (name, src) in [
        ("gravity", pikg::kernels::GRAVITY_DSL),
        ("density", pikg::kernels::DENSITY_DSL),
        ("hydro", pikg::kernels::HYDRO_DSL),
    ] {
        let k = pikg::compile(src).expect("bundled kernels compile");
        println!(
            "  {name:<10} {} ops/interaction",
            k.flops_per_interaction(FlopPolicy::paper())
        );
    }

    // Host measurement.
    println!("\nThis host (single core, f32 relative coordinates):");
    let rate = measure_gravity(256, 2048, 50);
    println!(
        "  gravity: {:.2} Gflops counted ({:.1}M interactions/s)",
        rate.gflops,
        rate.interactions_per_s / 1e6
    );
    let mut csv = String::from("kernel,ops,host_gflops\n");
    csv.push_str(&format!("gravity,{PAPER_GRAVITY_OPS},{:.3}\n", rate.gflops));
    bench::write_artifact("table4_host.csv", &csv);
}
