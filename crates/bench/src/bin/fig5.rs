//! Figure 5: face-on and edge-on gas surface-density maps of a disk galaxy
//! integrated with the surrogate scheme.
//!
//! A scaled-down Model MW-mini runs for a stretch of steps with the
//! surrogate scheme (including star formation, cooling and SN regions) and
//! the gas column density is dumped for both projections.

use asura_core::diagnostics::{surface_density, Projection};
use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use galactic_ic::GalaxyModel;

fn main() {
    let model = GalaxyModel::mw_mini();
    let n_gas = 4000;
    let real = model.realize(2000, 2000, n_gas, 7);

    let mut particles = Vec::new();
    let mut id = 0u64;
    for (p, v) in real.dm.pos.iter().zip(&real.dm.vel) {
        particles.push(Particle::dm(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_dm_particle,
        ));
        id += 1;
    }
    for (p, v) in real.stars.pos.iter().zip(&real.stars.vel) {
        particles.push(Particle::star(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_star_particle,
            -1000.0, // old disk stars: no SNe from the initial population
        ));
        id += 1;
    }
    let h0 = model.gas_disk.r_scale * 0.05;
    for (p, v) in real.gas.pos.iter().zip(&real.gas.vel) {
        particles.push(Particle::gas(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_gas_particle,
            8.0, // ~ 10^4 K warm ISM
            h0,
        ));
        id += 1;
    }

    // Seed young massive stars so SN regions flow through the surrogate
    // during the measured window.
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    use rand::{Rng, SeedableRng};
    for k in 0..8u64 {
        let m = rng.gen_range(9.0..18.0);
        let life = astro::lifetime::stellar_lifetime_myr(m);
        let t_explode = rng.gen_range(0.2..1.8);
        let r = rng.gen_range(100.0..1200.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        particles.push(Particle::star(
            id + k,
            Vec3::new(r * th.cos(), r * th.sin(), 0.0),
            Vec3::ZERO,
            m,
            t_explode - life,
        ));
    }

    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.1,
        pool_latency_steps: 5,
        eps: 20.0,
        n_ngb: 24,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 99);
    let steps = 20;
    println!(
        "Figure 5: integrating Model {} ({} particles) for {steps} steps with the surrogate scheme",
        model.name,
        sim.particles.len()
    );
    sim.run(steps);
    println!(
        "t = {:.2} Myr: {} SN events, {} stars formed, {} regions applied",
        sim.time, sim.stats.sn_events, sim.stats.stars_formed, sim.stats.regions_applied
    );

    let half = model.gas_disk.r_max * 0.6;
    let face = surface_density(&sim.particles, Projection::FaceOn, half, 64);
    let edge = surface_density(&sim.particles, Projection::EdgeOn, half, 64);
    println!(
        "face-on map mass: {:.3e} M_sun; edge-on: {:.3e} M_sun",
        face.total_mass(),
        edge.total_mass()
    );
    bench::write_artifact("fig5_faceon.csv", &face.to_csv());
    bench::write_artifact("fig5_edgeon.csv", &edge.to_csv());
}
