//! Figure 7: weak- and strong-scaling on the Rusty genoa partition.

use bench::write_artifact;
use perfmodel::scaling::node_sweep;
use perfmodel::{strong_scaling, weak_scaling, Machine};

fn main() {
    let rusty = Machine::rusty();

    // Weak scaling: 1.2e9 particles per node, 11 -> 193 nodes
    // (48 MPI ranks per node on Rusty; the model works at node granularity).
    let nodes = node_sweep(11, 193);
    let weak = weak_scaling(rusty, 1.2e9, 0.163, 2048, &nodes);
    println!("Figure 7 (left): weak scaling, Rusty, 1.2e9 particles/node");
    println!("{:>8} {:>12}", "nodes", "t/step [s]");
    for (p, t) in weak.totals() {
        println!("{p:>8} {t:>12.3}");
    }
    println!("weak efficiency 11 -> 193: {:.2}", weak.efficiency(true));
    write_artifact("fig7_weak.csv", &weak.to_csv());

    // Strong scaling: the two Rusty sets of Table 2.
    println!("\nFigure 7 (right): strong scaling, Rusty");
    for (label, n_tot, lo, hi) in [
        ("strongMW_rusty (5.1e10)", 5.1e10, 43, 193),
        ("strongMWs_rusty (1.1e10)", 1.1e10, 11, 43),
    ] {
        let curve = strong_scaling(rusty, n_tot, 0.163, 2048, &node_sweep(lo, hi));
        println!("  {label}:");
        let totals = curve.totals();
        for (p, t) in &totals {
            println!("    {p:>6} nodes: {t:>10.3} s/step");
        }
        // The paper reports "excellent scalability" in this regime: check
        // and print the achieved speedup against ideal.
        let (p0, t0) = totals[0];
        let (p1, t1) = *totals.last().expect("points");
        let speedup = t0 / t1;
        let ideal = p1 as f64 / p0 as f64;
        println!(
            "    speedup {speedup:.2}x over {ideal:.2}x ideal ({:.0}% efficiency)",
            100.0 * speedup / ideal
        );
        write_artifact(
            &format!(
                "fig7_strong_{}.csv",
                label.split_whitespace().next().expect("label")
            ),
            &curve.to_csv(),
        );
    }
}
