//! Shared helpers for the benchmark harness binaries.
//!
//! Every paper table/figure has a binary in `src/bin/` that prints the
//! regenerated rows/series to stdout and writes CSV artifacts under
//! `results/` (see DESIGN.md's experiment index).

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

/// Directory where harness binaries drop their CSV artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a named CSV artifact and report the path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write artifact");
    println!("[artifact] {}", path.display());
}

/// Render a number in the paper's compact scientific style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    if (-2..4).contains(&exp) {
        format!("{v:.3}")
    } else {
        let mant = v / 10f64.powi(exp);
        format!("{mant:.2}e{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_both_regimes() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(12.5), "12.500");
        assert_eq!(sci(3.0e11), "3.00e11");
        assert_eq!(sci(7.5e-7), "7.50e-7");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
