//! The distributed block-timestep trajectory benchmark (`cargo bench
//! --bench dist_blockstep`).
//!
//! Runs the spiked-dt scenario — a uniform gas blob with one SN-hot
//! particle — through the **distributed** (`mpisim`) driver in both
//! [`TimestepMode::Global`] (the surrogate scheme's fixed-dt KDK) and
//! [`TimestepMode::Block`] (the conventional hierarchy's substep walk,
//! world-reduced schedule), over the same number of base steps, and
//! compares:
//!
//! * the Fig. 6/7 phase breakdown of each mode — in Block mode the
//!   per-substep ghost refreshes and barrier-bracketed walk phases carry
//!   the synchronization cost the paper's §1 argument charges against
//!   individual timesteps, now measured across ranks instead of modeled;
//! * the gated `update_ratio`: what a lockstep walk at the schedule's
//!   depth would cost (`N × substeps` particle-updates) over what the
//!   active-set hierarchy actually paid — the machine-independent update
//!   economy of block timesteps (deterministic counters, so CI can gate
//!   on it);
//! * `block_sync_share` (informational): the fraction of Block-mode wall
//!   time spent in exchange/ghost phases.
//!
//! Writes `BENCH_dist_blockstep.json` at the repo root so subsequent PRs
//! have a perf trajectory.

use asura_core::dist::{run_distributed, DistConfig, DistReport, PredictorKind};
use asura_core::{Particle, Scheme, SimConfig, TimestepMode};
use fdps::exchange::Routing;
use fdps::Vec3;
use std::time::Instant;

const N_SIDE: usize = 8;
const DT_BASE: f64 = 2.0e-3;
const BASE_STEPS: usize = 2;
const MAX_LEVEL: u32 = 6;
const GRID: (usize, usize, usize) = (2, 1, 1);
const N_POOL: usize = 1;

fn spiked_blob() -> Vec<Particle> {
    let mut particles = Vec::new();
    let mut id = 0u64;
    for i in 0..N_SIDE {
        for j in 0..N_SIDE {
            for k in 0..N_SIDE {
                particles.push(Particle::gas(
                    id,
                    Vec3::new(
                        i as f64 - N_SIDE as f64 / 2.0,
                        j as f64 - N_SIDE as f64 / 2.0,
                        k as f64 - N_SIDE as f64 / 2.0,
                    ),
                    Vec3::ZERO,
                    1.0,
                    1.0,
                    1.3,
                ));
                id += 1;
            }
        }
    }
    // SN-hot centre particle: ~10^4 km/s signal speed collapses its CFL
    // step well below the base step on whichever rank owns it.
    let center = (N_SIDE / 2) * N_SIDE * N_SIDE + (N_SIDE / 2) * N_SIDE + N_SIDE / 2;
    particles[center].u = 1.0e8;
    particles
}

fn config(mode: TimestepMode) -> DistConfig {
    DistConfig {
        grid: GRID,
        n_pool: N_POOL,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            timestep: mode,
            dt_global: DT_BASE,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            n_ngb: 16,
            ..Default::default()
        },
        steps: BASE_STEPS,
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
    }
}

/// Phases whose time is inter-rank synchronization/communication rather
/// than local compute — the per-substep overhead class of the paper's §1
/// argument.
const SYNC_PHASES: &[&str] = &[
    asura_core::phases::EXCHANGE_PARTICLE,
    asura_core::phases::PREPROCESS_FEEDBACK,
    asura_core::phases::EXCHANGE_LET_1,
    asura_core::phases::EXCHANGE_LET_2,
    asura_core::phases::SEND_SNE,
    asura_core::phases::RECEIVE_SNE,
];

struct RunResult {
    wall_s: f64,
    report: DistReport,
    sync_s: f64,
    phase_total_s: f64,
}

fn run(mode: TimestepMode) -> RunResult {
    let ic = spiked_blob();
    let cfg = config(mode);
    let start = Instant::now();
    let report = run_distributed(&cfg, &ic).expect("dist run");
    let wall_s = start.elapsed().as_secs_f64();
    let sync_s: f64 = SYNC_PHASES
        .iter()
        .filter_map(|name| report.phases.get(name).map(|e| e.total_s))
        .sum();
    let phase_total_s = report.phases.total_s();
    RunResult {
        wall_s,
        report,
        sync_s,
        phase_total_s,
    }
}

fn main() {
    let n = N_SIDE * N_SIDE * N_SIDE;
    println!(
        "dist_blockstep: N={n}, grid {}x{}x{}+{}, dt_base={DT_BASE}, {BASE_STEPS} base steps",
        GRID.0, GRID.1, GRID.2, N_POOL
    );

    let global = run(TimestepMode::Global);
    let g_updates: u64 = global
        .report
        .rank_stats
        .iter()
        .map(|s| s.active_updates)
        .sum();
    println!(
        "global: {:.3} s wall ({:.3} s phases, {:.3} s sync), {} steps, {} updates",
        global.wall_s, global.phase_total_s, global.sync_s, global.report.steps, g_updates
    );

    let block = run(TimestepMode::Block {
        max_level: MAX_LEVEL,
    });
    let b_updates: u64 = block
        .report
        .rank_stats
        .iter()
        .map(|s| s.active_updates)
        .sum();
    let substeps = block
        .report
        .rank_stats
        .iter()
        .map(|s| s.substeps)
        .max()
        .unwrap_or(0);
    let (refreshes, rebuilds, sph_refreshes, sph_rebuilds) =
        block.report.rank_stats.iter().fold((0, 0, 0, 0), |a, s| {
            (
                a.0 + s.tree_refreshes,
                a.1 + s.tree_rebuilds,
                a.2 + s.sph_tree_refreshes,
                a.3 + s.sph_tree_rebuilds,
            )
        });
    println!(
        "block:  {:.3} s wall ({:.3} s phases, {:.3} s sync), {} base steps / {} substeps, \
         {} updates, gravity tree {} refreshes / {} rebuilds, sph tree {} refreshes / {} rebuilds",
        block.wall_s,
        block.phase_total_s,
        block.sync_s,
        block.report.steps,
        substeps,
        b_updates,
        refreshes,
        rebuilds,
        sph_refreshes,
        sph_rebuilds,
    );

    // The paper's update economy, measured: a lockstep walk at the agreed
    // depth updates every particle at every fine substep; the active-set
    // hierarchy only pays for the levels that are due.
    let lockstep_updates = n as u64 * substeps.max(1);
    let update_ratio = lockstep_updates as f64 / b_updates.max(1) as f64;
    let block_sync_share = block.sync_s / block.phase_total_s.max(1e-12);
    let global_sync_share = global.sync_s / global.phase_total_s.max(1e-12);
    println!(
        "update economy: {update_ratio:.2}x vs lockstep at depth, \
         sync share: global {global_sync_share:.3} -> block {block_sync_share:.3}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {},\n",
            "  \"grid\": \"{}x{}x{}+{}\",\n",
            "  \"dt_base\": {},\n",
            "  \"base_steps\": {},\n",
            "  \"max_level_cap\": {},\n",
            "  \"global\": {{\"wall_s\": {:.4}, \"steps\": {}, \"updates\": {}, \"phase_total_s\": {:.4},\n",
            "             \"sync_s\": {:.4}, \"sync_share\": {:.4}}},\n",
            "  \"block\": {{\"wall_s\": {:.4}, \"base_steps\": {}, \"substeps\": {}, \"updates\": {},\n",
            "            \"phase_total_s\": {:.4}, \"sync_s\": {:.4}, \"tree_refreshes\": {}, \"tree_rebuilds\": {},\n",
            "            \"sph_tree_refreshes\": {}, \"sph_tree_rebuilds\": {}}},\n",
            "  \"update_ratio\": {:.3},\n",
            "  \"block_sync_share\": {:.4},\n",
            "  \"threads\": {}\n",
            "}}\n"
        ),
        n,
        GRID.0,
        GRID.1,
        GRID.2,
        N_POOL,
        DT_BASE,
        BASE_STEPS,
        MAX_LEVEL,
        global.wall_s,
        global.report.steps,
        g_updates,
        global.phase_total_s,
        global.sync_s,
        global_sync_share,
        block.wall_s,
        block.report.steps,
        substeps,
        b_updates,
        block.phase_total_s,
        block.sync_s,
        refreshes,
        rebuilds,
        sph_refreshes,
        sph_rebuilds,
        update_ratio,
        block_sync_share,
        rayon::current_num_threads(),
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_dist_blockstep.json");
    std::fs::write(&path, json).expect("write BENCH_dist_blockstep.json");
    println!("[artifact] {}", path.display());
}
