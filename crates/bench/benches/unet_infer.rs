//! U-Net CPU inference cost: the pool-node budget. The paper gives the
//! prediction 50 global steps (~0.1 Myr, tens of wall seconds at scale) to
//! finish; this bench measures what our CPU inference path needs per
//! region and writes the `BENCH_unet_infer.json` trajectory artifact at
//! the repo root.
//!
//! Two tiers:
//!
//! * iterated criterion-style measurements at small test grids (16^3 and
//!   32^3) for stable per-stage numbers;
//! * a single-shot encode → forward → decode pipeline at the paper's 64^3
//!   region grid (width-reduced to `base_features = 4`: the full-width
//!   64^3 forward costs minutes on 2 vCPUs, which is exactly the
//!   conv3d-blocking ROADMAP item — the artifact tracks it).

use criterion::{criterion_group, BenchRecord, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use surrogate::{decode_fields, encode_fields, particles_to_grid, VoxelGrid};
use unet::{Tensor, UNet3d, UNetConfig};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("unet_inference");
    group.sample_size(10);
    for &(n, feats) in &[(16usize, 4usize), (32, 8)] {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 8,
                out_channels: 8,
                base_features: feats,
            },
            1,
        );
        let x = Tensor::zeros(8, n, n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}cubed_f{feats}")),
            &n,
            |b, _| b.iter(|| black_box(net.forward(&x))),
        );
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    // The tensor boundary around the net at a small test grid: voxel fields
    // → 8-channel log tensor → fields.
    let n = 16usize;
    let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, n);
    let fields = particles_to_grid(grid, &synthetic_region(4000, 60.0));
    let mut group = c.benchmark_group("encode_decode_16cubed");
    group.sample_size(20);
    group.bench_function("encode", |b| b.iter(|| black_box(encode_fields(&fields))));
    let t = encode_fields(&fields);
    group.bench_function("decode", |b| b.iter(|| black_box(decode_fields(&t, grid))));
    group.finish();
}

fn bench_voxel_pipeline(c: &mut Criterion) {
    let parts = synthetic_region(5000, 60.0);
    c.bench_function("voxelize_5k_particles_16cubed", |b| {
        let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, 16);
        b.iter(|| black_box(particles_to_grid(grid, &parts)))
    });
}

fn synthetic_region(n: usize, side: f64) -> Vec<surrogate::GasParticle> {
    (0..n)
        .map(|i| surrogate::GasParticle {
            pos: fdps::Vec3::new(
                ((i * 7) % 600) as f64 / 600.0 * side - side / 2.0,
                ((i * 13) % 600) as f64 / 600.0 * side - side / 2.0,
                ((i * 29) % 600) as f64 / 600.0 * side - side / 2.0,
            ),
            vel: fdps::Vec3::new((i % 11) as f64 - 5.0, 0.0, 0.0),
            mass: 1.0,
            temp: 100.0 + (i % 97) as f64 * 50.0,
            h: 2.0,
            id: i as u64,
        })
        .collect()
}

/// Single-shot timings of the full tensor pipeline at the paper's 64^3
/// region grid, appended to the artifact as one-iteration records.
fn paper_grid_single_shot() -> Vec<BenchRecord> {
    const N: usize = 64;
    const FEATS: usize = 4;
    let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, N);
    let fields = particles_to_grid(grid, &synthetic_region(20_000, 60.0));
    let net = UNet3d::new(
        &UNetConfig {
            in_channels: 8,
            out_channels: 8,
            base_features: FEATS,
        },
        1,
    );
    let mut records = Vec::new();
    let mut shot = |name: &str, ns: f64| {
        println!("bench {name:<40} time: {ns:>14.1} ns/iter  (1 iter, single shot)");
        records.push(BenchRecord {
            name: format!("paper_grid_64cubed_f{FEATS}/{name}"),
            ns_per_iter: ns,
            iters: 1,
        });
    };

    let t0 = Instant::now();
    let x = encode_fields(&fields);
    shot("encode", t0.elapsed().as_secs_f64() * 1e9);

    let t0 = Instant::now();
    let y = black_box(net.forward(&x));
    shot("forward", t0.elapsed().as_secs_f64() * 1e9);

    let t0 = Instant::now();
    let out = black_box(decode_fields(&y, grid));
    shot("decode", t0.elapsed().as_secs_f64() * 1e9);
    assert_eq!(out.grid.n, N);
    records
}

criterion_group!(
    benches,
    bench_inference,
    bench_encode_decode,
    bench_voxel_pipeline
);

fn main() {
    benches();
    let mut records = criterion::take_records();
    records.extend(paper_grid_single_shot());
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_unet_infer.json");
    criterion::write_artifact(&path, &records);
    println!("[artifact] {}", path.display());
}
