//! U-Net CPU inference cost: the pool-node budget. The paper gives the
//! prediction 50 global steps (~0.1 Myr, tens of wall seconds at scale) to
//! finish; this bench measures what our CPU inference path needs per
//! region and writes the `BENCH_unet_infer.json` trajectory artifact at
//! the repo root.
//!
//! Three tiers:
//!
//! * iterated criterion-style measurements at small test grids (16^3 and
//!   32^3, both feature widths) for stable per-stage numbers;
//! * a single-shot encode → forward → decode pipeline at the paper's 64^3
//!   region grid — *informational* absolute timings (the <1 s
//!   interactivity target is asserted by the integration tests, not
//!   gated here, because absolute wall-clock swings with the runner);
//! * the **gated** `conv_gflops_ratio` top-level metric: achieved
//!   convolution throughput of the im2col+GEMM forward over the retained
//!   scalar loop-nest reference on the same net and input. Same op
//!   count, same run, same machine — throughput ratio = time ratio, so
//!   runner speed cancels and the bench-gate can hold the line on it.

use criterion::{criterion_group, BenchRecord, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use surrogate::{decode_fields, encode_fields, particles_to_grid, VoxelGrid};
use unet::{Tensor, UNet3d, UNetConfig};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("unet_inference");
    group.sample_size(10);
    for &(n, feats) in &[(16usize, 4usize), (32, 4), (32, 8)] {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 8,
                out_channels: 8,
                base_features: feats,
            },
            1,
        );
        let x = Tensor::zeros(8, n, n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}cubed_f{feats}")),
            &n,
            |b, _| b.iter(|| black_box(net.forward(&x))),
        );
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    // The tensor boundary around the net at a small test grid: voxel fields
    // → 8-channel log tensor → fields.
    let n = 16usize;
    let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, n);
    let fields = particles_to_grid(grid, &synthetic_region(4000, 60.0));
    let mut group = c.benchmark_group("encode_decode_16cubed");
    group.sample_size(20);
    group.bench_function("encode", |b| b.iter(|| black_box(encode_fields(&fields))));
    let t = encode_fields(&fields);
    group.bench_function("decode", |b| b.iter(|| black_box(decode_fields(&t, grid))));
    group.finish();
}

fn bench_voxel_pipeline(c: &mut Criterion) {
    let parts = synthetic_region(5000, 60.0);
    c.bench_function("voxelize_5k_particles_16cubed", |b| {
        let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, 16);
        b.iter(|| black_box(particles_to_grid(grid, &parts)))
    });
}

fn synthetic_region(n: usize, side: f64) -> Vec<surrogate::GasParticle> {
    (0..n)
        .map(|i| surrogate::GasParticle {
            pos: fdps::Vec3::new(
                ((i * 7) % 600) as f64 / 600.0 * side - side / 2.0,
                ((i * 13) % 600) as f64 / 600.0 * side - side / 2.0,
                ((i * 29) % 600) as f64 / 600.0 * side - side / 2.0,
            ),
            vel: fdps::Vec3::new((i % 11) as f64 - 5.0, 0.0, 0.0),
            mass: 1.0,
            temp: 100.0 + (i % 97) as f64 * 50.0,
            h: 2.0,
            id: i as u64,
        })
        .collect()
}

/// The gated convolution-throughput ratio: time the scalar loop-nest
/// reference against the im2col+GEMM production forward on one
/// representative interior convolution (8 -> 8 channels, k = 3, 32^3),
/// best-of-`reps` each. Identical op count, so the time ratio *is* the
/// achieved-GFLOPs ratio and runner speed cancels out.
fn conv_gflops_ratio() -> f64 {
    use unet::conv::Conv3d;
    let conv = Conv3d::new(8, 8, 3, 7);
    let x = Tensor::zeros(8, 32, 32, 32);
    let best = |f: &mut dyn FnMut() -> Tensor, reps: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let t_ref = best(&mut || conv.forward_reference(&x), 3);
    let t_gemm = best(&mut || conv.forward(&x), 10);
    let ratio = t_ref / t_gemm;
    println!("conv_gflops_ratio: {ratio:.2}x (scalar reference {t_ref:.4} s, gemm {t_gemm:.6} s)");
    ratio
}

/// Single-shot timings of the full tensor pipeline at the paper's 64^3
/// region grid, appended to the artifact as one-iteration records.
fn paper_grid_single_shot() -> Vec<BenchRecord> {
    const N: usize = 64;
    const FEATS: usize = 4;
    let grid = VoxelGrid::centered(fdps::Vec3::ZERO, 60.0, N);
    let fields = particles_to_grid(grid, &synthetic_region(20_000, 60.0));
    let net = UNet3d::new(
        &UNetConfig {
            in_channels: 8,
            out_channels: 8,
            base_features: FEATS,
        },
        1,
    );
    let mut records = Vec::new();
    let mut shot = |name: &str, ns: f64| {
        println!("bench {name:<40} time: {ns:>14.1} ns/iter  (1 iter, single shot)");
        records.push(BenchRecord {
            name: format!("paper_grid_64cubed_f{FEATS}/{name}"),
            ns_per_iter: ns,
            iters: 1,
        });
    };

    let t0 = Instant::now();
    let x = encode_fields(&fields);
    shot("encode", t0.elapsed().as_secs_f64() * 1e9);

    let t0 = Instant::now();
    let y = black_box(net.forward(&x));
    shot("forward", t0.elapsed().as_secs_f64() * 1e9);

    let t0 = Instant::now();
    let out = black_box(decode_fields(&y, grid));
    shot("decode", t0.elapsed().as_secs_f64() * 1e9);
    assert_eq!(out.grid.n, N);
    records
}

criterion_group!(
    benches,
    bench_inference,
    bench_encode_decode,
    bench_voxel_pipeline
);

fn main() {
    benches();
    let mut records = criterion::take_records();
    records.extend(paper_grid_single_shot());
    let ratio = conv_gflops_ratio();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_unet_infer.json");
    criterion::write_artifact_with_metrics(&path, &records, &[("conv_gflops_ratio", ratio)]);
    println!("[artifact] {}", path.display());
}
