//! U-Net CPU inference cost: the pool-node budget. The paper gives the
//! prediction 50 global steps (~0.1 Myr, tens of wall seconds at scale) to
//! finish; this bench measures what our CPU inference path needs per region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unet::{Tensor, UNet3d, UNetConfig};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("unet_inference");
    group.sample_size(10);
    for &(n, feats) in &[(16usize, 4usize), (32, 8)] {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 8,
                out_channels: 8,
                base_features: feats,
            },
            1,
        );
        let x = Tensor::zeros(8, n, n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}cubed_f{feats}")),
            &n,
            |b, _| b.iter(|| black_box(net.forward(&x))),
        );
    }
    group.finish();
}

fn bench_voxel_pipeline(c: &mut Criterion) {
    use fdps::Vec3;
    use surrogate::{particles_to_grid, GasParticle, VoxelGrid};
    let parts: Vec<GasParticle> = (0..5000)
        .map(|i| GasParticle {
            pos: Vec3::new(
                ((i * 7) % 600) as f64 / 10.0 - 30.0,
                ((i * 13) % 600) as f64 / 10.0 - 30.0,
                ((i * 29) % 600) as f64 / 10.0 - 30.0,
            ),
            vel: Vec3::ZERO,
            mass: 1.0,
            temp: 100.0,
            h: 2.0,
            id: i as u64,
        })
        .collect();
    c.bench_function("voxelize_5k_particles_16cubed", |b| {
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 16);
        b.iter(|| black_box(particles_to_grid(grid, &parts)))
    });
}

criterion_group!(benches, bench_inference, bench_voxel_pipeline);
criterion_main!(benches);
