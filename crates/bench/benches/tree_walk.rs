//! Ablation bench: interaction-list group size n_g (paper §5.2.4 tunes
//! n_g = 2048 on Fugaku, 65,536 on Miyabi), tree construction cost, and
//! the SPH smoothing-length iteration's tree-walk economy.
//! Writes the `BENCH_tree_walk.json` trajectory artifact at the repo
//! root, including the **gated** `h_iter_walk_ratio` top-level metric:
//! tree walks issued per h-iteration across a density pass whose initial
//! guess is off (the paper's "iterations are usually twice" regime).
//! Before the candidate cache every iteration walked (ratio 1.0); cached
//! re-filtering keeps it below 1.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fdps::{Tree, Vec3};
use gravity::GravitySolver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sph::density::{compute_density_on_tree, density_one_reference, DensityConfig, DensityResult};
use sph::{CubicSpline, SphKernel};
use std::hint::black_box;

fn cloud(n: usize) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let pos = (0..n)
        .map(|_| {
            // Centrally concentrated, like the galaxy.
            let r: f64 = rng.gen::<f64>().powi(2) * 10.0;
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = rng.gen_range(-0.5..0.5);
            Vec3::new(r * th.cos(), r * th.sin(), z)
        })
        .collect();
    let mass = vec![1.0; n];
    (pos, mass)
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        let (pos, mass) = cloud(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Tree::build(&pos, &mass, 8)))
        });
    }
    group.finish();
}

fn bench_group_size(c: &mut Criterion) {
    let (pos, mass) = cloud(20_000);
    let mut group = c.benchmark_group("gravity_n_group");
    group.sample_size(10);
    for &n_g in &[16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n_g), &n_g, |b, &n_g| {
            let solver = GravitySolver {
                theta: 0.5,
                n_group: n_g,
                eps: 0.01,
                ..Default::default()
            };
            b.iter(|| black_box(solver.evaluate(&pos, &mass, pos.len()).interactions))
        });
    }
    group.finish();
}

fn bench_mac_walk(c: &mut Criterion) {
    use fdps::walk::{InteractionList, WalkScratch};
    let (pos, mass) = cloud(50_000);
    let tree = Tree::build(&pos, &mass, 8);
    let groups = tree.groups(64);
    let index = tree.walk_index();
    let mut group = c.benchmark_group("mac_walk_50k");
    group.sample_size(10);
    group.bench_function("recursive_alloc_baseline", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                let mut list = InteractionList::default();
                tree.walk_mac_recursive(&tree.nodes[g].bbox, 0.5, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.bench_function("iterative_reuse", |b| {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                tree.walk_mac_into(&tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.bench_function("indexed_reuse", |b| {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                tree.walk_mac_indexed(&index, &tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

/// Jittered gas lattice for the density benches: `n_side^3` particles at
/// unit spacing (converged `h ~ 1.24` for 64 neighbours).
fn gas_cube(n_side: usize) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut pos = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                pos.push(Vec3::new(
                    i as f64 + rng.gen_range(-0.05..0.05),
                    j as f64 + rng.gen_range(-0.05..0.05),
                    k as f64 + rng.gen_range(-0.05..0.05),
                ));
            }
        }
    }
    let mass = vec![1.0; pos.len()];
    (pos, mass)
}

/// The mediocre-initial-guess operating point: `h0` well above the
/// converged value, so every particle actually iterates (shrinking h —
/// the case the candidate cache serves from a single walk).
const H0: f64 = 1.8;

fn bench_density_h_iteration(c: &mut Criterion) {
    let (pos, mass) = gas_cube(20);
    let cfg = DensityConfig::default();
    let kernel = CubicSpline;
    let radii = vec![kernel.support() * H0; pos.len()];
    let tree = Tree::build_with_h(&pos, &mass, Some(&radii), 16);
    let targets: Vec<usize> = (0..pos.len()).collect();
    let h0 = vec![H0; pos.len()];
    let mut h = h0.clone();
    let mut group = c.benchmark_group("sph_density_8k_h_iteration");
    group.sample_size(10);
    group.bench_function("cached_lists", |b| {
        b.iter(|| {
            h.copy_from_slice(&h0);
            black_box(compute_density_on_tree(
                &kernel, &cfg, &tree, &pos, &mass, &mut h, &targets,
            ))
        })
    });
    group.bench_function("walk_per_iteration_reference", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for &i in &targets {
                let r =
                    density_one_reference(&kernel, &cfg, &tree, &pos, &mass, i, H0, &mut scratch);
                acc += r.rho;
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Measure walks / iterations over one mediocre-guess density pass.
fn h_iter_walk_ratio() -> f64 {
    let (pos, mass) = gas_cube(20);
    let cfg = DensityConfig::default();
    let kernel = CubicSpline;
    let radii = vec![kernel.support() * H0; pos.len()];
    let tree = Tree::build_with_h(&pos, &mass, Some(&radii), 16);
    let targets: Vec<usize> = (0..pos.len()).collect();
    let mut h = vec![H0; pos.len()];
    let results: Vec<DensityResult> =
        compute_density_on_tree(&kernel, &cfg, &tree, &pos, &mass, &mut h, &targets);
    let iterations: u64 = results.iter().map(|r| r.iterations as u64).sum();
    let walks: u64 = results.iter().map(|r| r.walks as u64).sum();
    let ratio = walks as f64 / iterations.max(1) as f64;
    println!(
        "h_iter_walk_ratio: {ratio:.3} ({walks} walks / {iterations} iterations, \
         target < 1.0)"
    );
    ratio
}

criterion_group!(
    benches,
    bench_tree_build,
    bench_group_size,
    bench_mac_walk,
    bench_density_h_iteration
);

fn main() {
    benches();
    let records = criterion::take_records();
    let ratio = h_iter_walk_ratio();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_tree_walk.json");
    criterion::write_artifact_with_metrics(&path, &records, &[("h_iter_walk_ratio", ratio)]);
    println!("[artifact] {}", path.display());
}
