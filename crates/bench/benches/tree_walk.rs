//! Ablation bench: interaction-list group size n_g (paper §5.2.4 tunes
//! n_g = 2048 on Fugaku, 65,536 on Miyabi) and tree construction cost.
//! Writes the `BENCH_tree_walk.json` trajectory artifact at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fdps::{Tree, Vec3};
use gravity::GravitySolver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn cloud(n: usize) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let pos = (0..n)
        .map(|_| {
            // Centrally concentrated, like the galaxy.
            let r: f64 = rng.gen::<f64>().powi(2) * 10.0;
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = rng.gen_range(-0.5..0.5);
            Vec3::new(r * th.cos(), r * th.sin(), z)
        })
        .collect();
    let mass = vec![1.0; n];
    (pos, mass)
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        let (pos, mass) = cloud(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Tree::build(&pos, &mass, 8)))
        });
    }
    group.finish();
}

fn bench_group_size(c: &mut Criterion) {
    let (pos, mass) = cloud(20_000);
    let mut group = c.benchmark_group("gravity_n_group");
    group.sample_size(10);
    for &n_g in &[16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n_g), &n_g, |b, &n_g| {
            let solver = GravitySolver {
                theta: 0.5,
                n_group: n_g,
                eps: 0.01,
                ..Default::default()
            };
            b.iter(|| black_box(solver.evaluate(&pos, &mass, pos.len()).interactions))
        });
    }
    group.finish();
}

fn bench_mac_walk(c: &mut Criterion) {
    use fdps::walk::{InteractionList, WalkScratch};
    let (pos, mass) = cloud(50_000);
    let tree = Tree::build(&pos, &mass, 8);
    let groups = tree.groups(64);
    let index = tree.walk_index();
    let mut group = c.benchmark_group("mac_walk_50k");
    group.sample_size(10);
    group.bench_function("recursive_alloc_baseline", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                let mut list = InteractionList::default();
                tree.walk_mac_recursive(&tree.nodes[g].bbox, 0.5, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.bench_function("iterative_reuse", |b| {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                tree.walk_mac_into(&tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.bench_function("indexed_reuse", |b| {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        b.iter(|| {
            let mut total = 0usize;
            for &g in &groups {
                tree.walk_mac_indexed(&index, &tree.nodes[g].bbox, 0.5, &mut scratch, &mut list);
                total += list.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_group_size, bench_mac_walk);

fn main() {
    benches();
    let records = criterion::take_records();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_tree_walk.json");
    criterion::write_artifact(&path, &records);
    println!("[artifact] {}", path.display());
}
