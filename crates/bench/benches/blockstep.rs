//! The block-timestep trajectory benchmark (`cargo bench --bench
//! blockstep`).
//!
//! Runs the spiked-dt scenario — a uniform gas blob with one SN-hot
//! particle — through the real conventional-scheme driver in both
//! [`TimestepMode::Global`] and [`TimestepMode::Block`], advancing the
//! same physical horizon, and compares:
//!
//! * wall-clock per base step and total particle-updates (the paper's §1
//!   efficiency argument, measured instead of modeled);
//! * the measured update ratio against [`BlockSchedule::efficiency`]'s
//!   prediction for the assigned level population;
//! * tree refresh-vs-rebuild counts (the cross-substep reuse win).
//!
//! Writes `BENCH_blockstep.json` at the repo root so subsequent PRs have a
//! perf trajectory.

use asura_core::{Particle, Scheme, SimConfig, Simulation, TimestepMode};
use fdps::Vec3;
use std::time::Instant;

const N_SIDE: usize = 10;
const DT_BASE: f64 = 2.0e-3;
const BASE_STEPS: usize = 3;
const MAX_LEVEL: u32 = 8;

fn spiked_blob() -> Vec<Particle> {
    let mut particles = Vec::new();
    let mut id = 0u64;
    for i in 0..N_SIDE {
        for j in 0..N_SIDE {
            for k in 0..N_SIDE {
                particles.push(Particle::gas(
                    id,
                    Vec3::new(
                        i as f64 - N_SIDE as f64 / 2.0,
                        j as f64 - N_SIDE as f64 / 2.0,
                        k as f64 - N_SIDE as f64 / 2.0,
                    ),
                    Vec3::ZERO,
                    1.0,
                    1.0,
                    1.3,
                ));
                id += 1;
            }
        }
    }
    // SN-hot centre particle: ~10^4 km/s signal speed collapses its CFL
    // step by a factor ~2^5-2^6 below the base step.
    let center = (N_SIDE / 2) * N_SIDE * N_SIDE + (N_SIDE / 2) * N_SIDE + N_SIDE / 2;
    particles[center].u = 1.0e8;
    particles
}

fn config(mode: TimestepMode) -> SimConfig {
    SimConfig {
        scheme: Scheme::Conventional,
        timestep: mode,
        dt_global: DT_BASE,
        cooling: false,
        star_formation: false,
        eps: 1.0,
        ..Default::default()
    }
}

struct RunResult {
    wall_s: f64,
    steps: u64,
    substeps: u64,
    updates: u64,
    refreshes: u64,
    rebuilds: u64,
    sph_refreshes: u64,
    sph_rebuilds: u64,
    dt_min: f64,
    max_level: u32,
    predicted_substeps: u64,
    modeled_efficiency: f64,
}

fn run(mode: TimestepMode) -> RunResult {
    let horizon = BASE_STEPS as f64 * DT_BASE;
    let mut sim = Simulation::new(config(mode), spiked_blob(), 1);
    let start = Instant::now();
    while sim.time < horizon - 1e-12 {
        sim.step();
    }
    let wall_s = start.elapsed().as_secs_f64();
    let (max_level, predicted_substeps, modeled_efficiency) = sim
        .scheduler()
        .schedule()
        .map(|s| {
            // 1% of a full-system update per substep: the overhead class
            // blocksteps::tests uses for the paper's argument.
            (
                s.max_level(),
                s.substeps_per_base_step(),
                s.efficiency(0.01),
            )
        })
        .unwrap_or((0, 1, 1.0));
    RunResult {
        wall_s,
        steps: sim.stats.steps,
        substeps: sim.stats.substeps,
        updates: sim.stats.active_updates,
        refreshes: sim.stats.tree_refreshes,
        rebuilds: sim.stats.tree_rebuilds,
        sph_refreshes: sim.stats.sph_tree_refreshes,
        sph_rebuilds: sim.stats.sph_tree_rebuilds,
        dt_min: sim.stats.dt_min_seen,
        max_level,
        predicted_substeps,
        modeled_efficiency,
    }
}

fn main() {
    let n = N_SIDE * N_SIDE * N_SIDE;
    println!("blockstep: N={n}, dt_base={DT_BASE}, horizon={BASE_STEPS} base steps");

    let global = run(TimestepMode::Global);
    println!(
        "global: {:.3} s, {} steps, {} updates, dt_min {:.3e}",
        global.wall_s, global.steps, global.updates, global.dt_min
    );
    let block = run(TimestepMode::Block {
        max_level: MAX_LEVEL,
    });
    println!(
        "block:  {:.3} s, {} base steps / {} substeps (schedule says {}/base), \
         {} updates, max level {}, gravity tree {} refreshes / {} rebuilds, \
         sph tree {} refreshes / {} rebuilds, dt_min {:.3e}",
        block.wall_s,
        block.steps,
        block.substeps,
        block.predicted_substeps,
        block.updates,
        block.max_level,
        block.refreshes,
        block.rebuilds,
        block.sph_refreshes,
        block.sph_rebuilds,
        block.dt_min
    );
    let update_ratio = global.updates as f64 / block.updates.max(1) as f64;
    let speedup = global.wall_s / block.wall_s.max(1e-12);
    println!(
        "update savings: {update_ratio:.2}x, wall-clock speedup: {speedup:.2}x, \
         modeled block efficiency: {:.3}",
        block.modeled_efficiency
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {},\n",
            "  \"dt_base\": {},\n",
            "  \"base_steps\": {},\n",
            "  \"max_level_cap\": {},\n",
            "  \"global\": {{\"wall_s\": {:.4}, \"steps\": {}, \"updates\": {}, \"dt_min\": {:.6e}, \"tree_rebuilds\": {},\n",
            "             \"sph_tree_refreshes\": {}, \"sph_tree_rebuilds\": {}}},\n",
            "  \"block\": {{\"wall_s\": {:.4}, \"base_steps\": {}, \"substeps\": {}, \"updates\": {}, \"dt_min\": {:.6e},\n",
            "            \"max_level\": {}, \"substeps_per_base_step\": {}, \"tree_refreshes\": {}, \"tree_rebuilds\": {},\n",
            "            \"sph_tree_refreshes\": {}, \"sph_tree_rebuilds\": {}}},\n",
            "  \"update_ratio\": {:.3},\n",
            "  \"wall_speedup\": {:.3},\n",
            "  \"modeled_block_efficiency\": {:.4},\n",
            "  \"threads\": {}\n",
            "}}\n"
        ),
        n,
        DT_BASE,
        BASE_STEPS,
        MAX_LEVEL,
        global.wall_s,
        global.steps,
        global.updates,
        global.dt_min,
        global.rebuilds,
        global.sph_refreshes,
        global.sph_rebuilds,
        block.wall_s,
        block.steps,
        block.substeps,
        block.updates,
        block.dt_min,
        block.max_level,
        block.predicted_substeps,
        block.refreshes,
        block.rebuilds,
        block.sph_refreshes,
        block.sph_rebuilds,
        update_ratio,
        speedup,
        block.modeled_efficiency,
        rayon::current_num_threads(),
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_blockstep.json");
    std::fs::write(&path, json).expect("write BENCH_blockstep.json");
    println!("[artifact] {}", path.display());
}
