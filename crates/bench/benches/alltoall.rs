//! Ablation bench: flat vs 3-D torus alltoallv (paper §3.4's O(p^{1/3})
//! optimization), measured on real mpisim ranks. Writes the
//! `BENCH_alltoall.json` trajectory artifact at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mpisim::{TorusDims, World};
use std::hint::black_box;

fn bench_alltoall(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoallv");
    group.sample_size(10);
    for &ranks in &[8usize, 27, 64] {
        let payload = 256usize; // u64 per rank pair
        group.bench_with_input(BenchmarkId::new("flat", ranks), &ranks, |b, &p| {
            b.iter(|| {
                let out = World::new(p).run(|comm| {
                    let sends: Vec<Vec<u64>> = (0..p).map(|j| vec![j as u64; payload]).collect();
                    comm.alltoallv(sends).len()
                });
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("torus3d", ranks), &ranks, |b, &p| {
            let dims = TorusDims::for_size(p);
            b.iter(|| {
                let out = World::new(p).run(|comm| {
                    let sends: Vec<Vec<u64>> = (0..p).map(|j| vec![j as u64; payload]).collect();
                    comm.alltoallv_torus(dims, sends).len()
                });
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alltoall);

fn main() {
    benches();
    let records = criterion::take_records();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_alltoall.json");
    criterion::write_artifact(&path, &records);
    println!("[artifact] {}", path.display());
}
