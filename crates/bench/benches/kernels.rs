//! Criterion benches of the three interaction kernels (Table 4) plus the
//! PPA and mixed-precision ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdps::Vec3;
use gravity::kernel::{accumulate_f64, accumulate_mixed, GravityAccum};
use pikg::kernels::PAPER_GRAVITY_OPS;
use sph::kernel::{CubicSpline, PpaSpline, SphKernel};
use std::hint::black_box;

fn cloud(n: usize) -> (Vec<Vec3>, Vec<f64>) {
    let pos = (0..n)
        .map(|i| {
            Vec3::new(
                (i as f64 * 0.37).sin(),
                (i as f64 * 0.73).cos(),
                (i as f64 * 0.11).sin(),
            )
        })
        .collect();
    let mass = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
    (pos, mass)
}

fn bench_gravity(c: &mut Criterion) {
    let n_i = 64;
    let n_j = 2048; // the paper's Fugaku group size
    let (jpos, jmass) = cloud(n_j);
    let (ipos, _) = cloud(n_i);
    let mut group = c.benchmark_group("gravity_kernel");
    group.throughput(Throughput::Elements((n_i * n_j) as u64));

    group.bench_function("f64", |b| {
        let mut out = vec![GravityAccum::default(); n_i];
        b.iter(|| {
            accumulate_f64(
                black_box(&ipos),
                black_box(&jpos),
                black_box(&jmass),
                1e-4,
                &mut out,
            );
            black_box(&out);
        })
    });
    group.bench_function("mixed_f32", |b| {
        let mut out = vec![GravityAccum::default(); n_i];
        b.iter(|| {
            accumulate_mixed(
                Vec3::ZERO,
                black_box(&ipos),
                black_box(&jpos),
                black_box(&jmass),
                1e-4,
                &mut out,
            );
            black_box(&out);
        })
    });
    group.finish();
    println!(
        "(counted ops per interaction: {PAPER_GRAVITY_OPS}; GFLOPS = elements/s * {PAPER_GRAVITY_OPS} / 1e9)"
    );
}

fn bench_spline(c: &mut Criterion) {
    let exact = CubicSpline;
    let ppa = PpaSpline::new(16);
    let qs: Vec<f64> = (0..4096).map(|i| 2.2 * i as f64 / 4096.0).collect();
    let mut group = c.benchmark_group("spline_kernel");
    group.throughput(Throughput::Elements(qs.len() as u64));
    group.bench_function("direct", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &qs {
                acc += exact.w(black_box(q), 1.0);
            }
            black_box(acc)
        })
    });
    group.bench_function("ppa_table", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &qs {
                acc += ppa.w(black_box(q), 1.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_dsl_interpreter(c: &mut Criterion) {
    // The PIKG DSL path: useful to quantify the generated-code gap.
    let kernel = pikg::compile(pikg::kernels::GRAVITY_DSL).expect("bundled kernel");
    let n_j = 512;
    let x: Vec<f64> = (0..n_j).map(|j| (j as f64 * 0.3).sin()).collect();
    let y: Vec<f64> = (0..n_j).map(|j| (j as f64 * 0.7).cos()).collect();
    let z: Vec<f64> = (0..n_j).map(|j| (j as f64 * 0.9).sin()).collect();
    let m = vec![1.0; n_j];
    let e2 = vec![1e-4; n_j];
    let (xi, yi, zi, ei) = (vec![0.1; 8], vec![0.2; 8], vec![0.3; 8], vec![1e-4; 8]);
    c.bench_with_input(BenchmarkId::new("pikg_dsl_gravity", n_j), &n_j, |b, _| {
        b.iter(|| {
            let mut ax = vec![0.0; 8];
            let mut ay = vec![0.0; 8];
            let mut az = vec![0.0; 8];
            let mut pot = vec![0.0; 8];
            kernel.execute(
                &pikg::SoaBuffers {
                    epi: vec![&xi, &yi, &zi, &ei],
                    epj: vec![&x, &y, &z, &m, &e2],
                },
                &mut [&mut ax, &mut ay, &mut az, &mut pot],
            );
            black_box(pot)
        })
    });
}

criterion_group!(benches, bench_gravity, bench_spline, bench_dsl_interpreter);
criterion_main!(benches);
