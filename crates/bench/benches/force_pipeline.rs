//! The force-pipeline trajectory benchmark (`cargo bench --bench
//! force_pipeline`).
//!
//! Measures, at the ISSUE's reference operating point (N = 100k,
//! theta = 0.5, n_group = 64):
//!
//! 1. **walk_recursive_alloc** — the checked-in naive baseline: serial
//!    recursive MAC walk with a freshly allocated `InteractionList` per
//!    group (exactly what `Tree::interaction_lists` did before the
//!    zero-allocation refactor);
//! 2. **walk_indexed_serial** — the compact `WalkIndex` walk with scratch
//!    reuse, single-threaded (isolates the cache-layout win);
//! 3. **walk_indexed_parallel** — the production path: rayon-parallel
//!    indexed walk with per-worker `WalkScratch` + `InteractionList` reuse
//!    (what `Tree::interaction_lists` and the gravity solver run);
//! 4. the monopole kernel's ns/interaction: AoS f64 (the retained scalar
//!    reference), SoA f64 (the vectorized production kernel — their ratio
//!    is the gated `simd_speedup`), and the staged mixed-precision kernel.
//!
//! Writes `BENCH_force.json` at the repo root so subsequent PRs have a
//! perf trajectory, and prints the walk speedup (target: >= 2x) and the
//! kernel simd speedup (target: >= 1.5x).

use fdps::walk::{InteractionList, WalkScratch};
use fdps::{Tree, Vec3};
use gravity::kernel::{accumulate_f64, accumulate_f64_soa, accumulate_mixed_staged, GravityAccum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 100_000;
const THETA: f64 = 0.5;
const N_GROUP: usize = 64;
const N_LEAF: usize = 8;

fn cloud(n: usize) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let pos = (0..n)
        .map(|_| {
            // Centrally concentrated, like the galaxy.
            let r: f64 = rng.gen::<f64>().powi(2) * 10.0;
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = rng.gen_range(-0.5..0.5);
            Vec3::new(r * th.cos(), r * th.sin(), z)
        })
        .collect();
    let mass = vec![1.0; n];
    (pos, mass)
}

/// Wall-clock seconds of `f`, best of `reps`.
fn time_best<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut check = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        check = black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, check)
}

fn main() {
    let (pos, mass) = cloud(N);
    let tree = Tree::build(&pos, &mass, N_LEAF);
    let groups = tree.groups(N_GROUP);
    let n_groups = groups.len();
    println!("force_pipeline: N={N}, theta={THETA}, n_group={N_GROUP} -> {n_groups} groups");

    // 1. Naive checked-in baseline: serial recursive walk, fresh list per
    //    group (the pre-refactor interaction_lists).
    let (t_rec, len_rec) = time_best(5, || {
        let mut total = 0u64;
        for &g in &groups {
            let mut list = InteractionList::default();
            tree.walk_mac_recursive(&tree.nodes[g].bbox, THETA, &mut list);
            total += list.len() as u64;
        }
        total
    });

    // 2. Indexed walk, serial, scratch reuse: the cache-layout win alone.
    let index = tree.walk_index();
    let (t_ser, len_ser) = time_best(5, || {
        let mut scratch = WalkScratch::default();
        let mut list = InteractionList::default();
        let mut total = 0u64;
        for &g in &groups {
            tree.walk_mac_indexed(&index, &tree.nodes[g].bbox, THETA, &mut scratch, &mut list);
            total += list.len() as u64;
        }
        total
    });
    assert_eq!(len_rec, len_ser, "walks must agree on total list length");

    // 3. Production path: parallel indexed walk, per-worker scratch reuse.
    let (t_par, len_par) = time_best(5, || {
        groups
            .par_iter()
            .map_init(
                || (WalkScratch::default(), InteractionList::default()),
                |(scratch, list), &g| {
                    tree.walk_mac_indexed(&index, &tree.nodes[g].bbox, THETA, scratch, list);
                    list.len() as u64
                },
            )
            .collect::<Vec<u64>>()
            .iter()
            .sum()
    });
    assert_eq!(len_rec, len_par, "walks must agree on total list length");

    let t_best = t_ser.min(t_par);
    let lists_per_sec_rec = n_groups as f64 / t_rec;
    let lists_per_sec_ser = n_groups as f64 / t_ser;
    let lists_per_sec_par = n_groups as f64 / t_par;
    let speedup = t_rec / t_best;
    println!(
        "walk_recursive_alloc:  {:10.1} lists/s  ({:.3} s/pass)",
        lists_per_sec_rec, t_rec
    );
    println!(
        "walk_indexed_serial:   {:10.1} lists/s  ({:.3} s/pass, {:.2}x)",
        lists_per_sec_ser,
        t_ser,
        t_rec / t_ser
    );
    println!(
        "walk_indexed_parallel: {:10.1} lists/s  ({:.3} s/pass, {:.2}x)",
        lists_per_sec_par,
        t_par,
        t_rec / t_par
    );
    println!("walk speedup: {speedup:.2}x (target >= 2x)");

    // 4. Kernel ns/interaction at the paper's Fugaku group size. The AoS
    //    f64 kernel is the retained scalar-layout reference; the SoA form
    //    is what the solver stages per group (bitwise-identical results,
    //    packed loads) — their ratio is the gated `simd_speedup`. The
    //    mixed-precision kernel is measured through its staged entry
    //    point, exactly as the solver launches it (caller-owned f32
    //    scratch, no per-launch allocation).
    let n_i = 64;
    let n_j = 2048;
    let ipos = &pos[..n_i];
    let jpos = &pos[1000..1000 + n_j];
    let jmass = &mass[1000..1000 + n_j];
    let jx: Vec<f64> = jpos.iter().map(|p| p.x).collect();
    let jy: Vec<f64> = jpos.iter().map(|p| p.y).collect();
    let jz: Vec<f64> = jpos.iter().map(|p| p.z).collect();
    let jx32: Vec<f32> = jpos.iter().map(|p| p.x as f32).collect();
    let jy32: Vec<f32> = jpos.iter().map(|p| p.y as f32).collect();
    let jz32: Vec<f32> = jpos.iter().map(|p| p.z as f32).collect();
    let jm32: Vec<f32> = jmass.iter().map(|&m| m as f32).collect();
    let mut out = vec![GravityAccum::default(); n_i];
    let kernel_reps = 200;
    let (t_f64, _) = time_best(3, || {
        for _ in 0..kernel_reps {
            accumulate_f64(
                black_box(ipos),
                black_box(jpos),
                black_box(jmass),
                1e-4,
                &mut out,
            );
        }
        out.len() as u64
    });
    let ns_per_inter_f64 = t_f64 * 1e9 / (kernel_reps * n_i * n_j) as f64;
    let (t_soa, _) = time_best(3, || {
        for _ in 0..kernel_reps {
            accumulate_f64_soa(
                black_box(ipos),
                black_box(&jx),
                black_box(&jy),
                black_box(&jz),
                black_box(jmass),
                1e-4,
                &mut out,
            );
        }
        out.len() as u64
    });
    let ns_per_inter_soa = t_soa * 1e9 / (kernel_reps * n_i * n_j) as f64;
    let (t_mixed, _) = time_best(3, || {
        for _ in 0..kernel_reps {
            accumulate_mixed_staged(
                Vec3::ZERO,
                black_box(ipos),
                black_box(&jx32),
                black_box(&jy32),
                black_box(&jz32),
                black_box(&jm32),
                1e-4,
                &mut out,
            );
        }
        out.len() as u64
    });
    let ns_per_inter_mixed = t_mixed * 1e9 / (kernel_reps * n_i * n_j) as f64;
    let simd_speedup = ns_per_inter_f64 / ns_per_inter_soa;
    println!("kernel f64 (AoS ref):  {ns_per_inter_f64:.3} ns/interaction");
    println!("kernel f64 (SoA):      {ns_per_inter_soa:.3} ns/interaction");
    println!("kernel mixed (staged): {ns_per_inter_mixed:.3} ns/interaction");
    println!("simd_speedup: {simd_speedup:.2}x (target >= 1.5x)");

    // Trajectory artifact at the repo root.
    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {},\n",
            "  \"theta\": {},\n",
            "  \"n_group\": {},\n",
            "  \"n_groups\": {},\n",
            "  \"total_list_len\": {},\n",
            "  \"walk_recursive_alloc_lists_per_sec\": {:.1},\n",
            "  \"walk_indexed_serial_lists_per_sec\": {:.1},\n",
            "  \"walk_indexed_parallel_lists_per_sec\": {:.1},\n",
            "  \"walk_speedup\": {:.3},\n",
            "  \"kernel_f64_ns_per_interaction\": {:.4},\n",
            "  \"kernel_f64_soa_ns_per_interaction\": {:.4},\n",
            "  \"kernel_mixed_ns_per_interaction\": {:.4},\n",
            "  \"simd_speedup\": {:.3},\n",
            "  \"threads\": {}\n",
            "}}\n"
        ),
        N,
        THETA,
        N_GROUP,
        n_groups,
        len_par,
        lists_per_sec_rec,
        lists_per_sec_ser,
        lists_per_sec_par,
        speedup,
        ns_per_inter_f64,
        ns_per_inter_soa,
        ns_per_inter_mixed,
        simd_speedup,
        rayon::current_num_threads(),
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_force.json");
    std::fs::write(&path, json).expect("write BENCH_force.json");
    println!("[artifact] {}", path.display());
}
