//! Density summation and the kernel-size (smoothing-length) iteration
//! (paper §5.2.5: "this part includes both tree walk and interaction
//! calculation, and they are repeated until the results converge. The
//! iterations are usually twice, if we can set the initial guess of the
//! kernel size properly.").
//!
//! # Shared interaction lists across the h-iteration
//!
//! The iteration no longer walks the tree once per trial `h`. The first
//! walk's candidate list — indices, distances and masses — is cached in a
//! per-worker [`NeighborCache`] and later iterations *re-filter* it by the
//! updated support radius. This is exact because positions are fixed
//! during the iteration and [`fdps::Tree::neighbors_within`]'s pruning
//! bound `max(r, h_max)` is monotone in the query radius: the candidate
//! list at any radius `r' <= r` is an order-preserving sublist of the list
//! at `r` (pinned by a test in `fdps`), and the gather filter
//! `r_j < support * h` is applied exactly on the superset. Only when `h`
//! grows past the cached radius does the iteration fall back to a fresh
//! walk — padded by [`NeighborCache::REWALK_MARGIN`] so further modest
//! growth re-filters again. [`DensityResult::walks`] over
//! [`DensityResult::iterations`] is the gated `h_iter_walk_ratio` metric.

use crate::kernel::SphKernel;
use fdps::{Tree, Vec3};
use rayon::prelude::*;

/// Result of a converged density pass for one particle.
#[derive(Debug, Clone, Copy, Default)]
pub struct DensityResult {
    pub rho: f64,
    pub h: f64,
    /// Number of neighbours inside the support radius.
    pub n_ngb: usize,
    /// Smoothing-length iterations taken.
    pub iterations: u32,
    /// Tree walks issued — `<= iterations` thanks to the candidate cache.
    pub walks: u32,
}

/// Parameters of the smoothing-length iteration.
#[derive(Debug, Clone, Copy)]
pub struct DensityConfig {
    /// Target neighbour count (paper: the kernel radius is "typically the
    /// size of 100 gas SPH particles").
    pub n_ngb_target: usize,
    /// Relative tolerance on the neighbour count.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for DensityConfig {
    fn default() -> Self {
        DensityConfig {
            n_ngb_target: 64,
            tolerance: 0.15,
            max_iter: 8,
        }
    }
}

/// Per-worker candidate cache shared across one particle's h-iteration
/// (see the module docs): indices, distances and masses from the last
/// tree walk, valid for any query radius up to `radius`. Cleared in place
/// between particles, so steady-state passes reuse its capacity.
#[derive(Debug, Clone, Default)]
pub struct NeighborCache {
    /// Candidate indices of the cached walk.
    idx: Vec<u32>,
    /// `|x_i - x_j|` per candidate — positions are fixed during the
    /// iteration, so distances are computed once per walk, not per trial h.
    r: Vec<f64>,
    /// Source mass per candidate.
    m: Vec<f64>,
    /// Kernel-value scratch for the batched `W` evaluation.
    w: Vec<f64>,
    /// Query radius the cached walk covers.
    radius: f64,
}

impl NeighborCache {
    /// Padding applied to the search radius of a *re*-walk (one forced by
    /// `h` outgrowing the cache): once the iteration is known to be live,
    /// walking slightly wide lets further growth up to this factor
    /// re-filter instead of walking again. The first walk is unpadded so
    /// the common converged-in-one case costs exactly what it used to.
    pub const REWALK_MARGIN: f64 = 1.2;

    /// Walk the tree at `radius` around `xi` and stage candidates.
    fn stage(&mut self, tree: &Tree, pos: &[Vec3], mass: &[f64], xi: Vec3, radius: f64) {
        self.idx.clear();
        tree.neighbors_within(xi, radius, &mut self.idx);
        self.r.clear();
        self.m.clear();
        for &j in &self.idx {
            let j = j as usize;
            self.r.push((xi - pos[j]).norm());
            self.m.push(mass[j]);
        }
        self.radius = radius;
    }

    /// Sum `rho = sum m_j W(r_j, h)` and count neighbours over the cached
    /// candidates with the exact gather filter `r_j < rad`. `W` is
    /// evaluated through the kernel's batch method; the masked
    /// accumulation runs over 4 independent lanes reduced in a fixed
    /// order — deterministic for a given candidate order.
    fn sum_density(&mut self, kernel: &dyn SphKernel, h: f64, rad: f64) -> (f64, usize) {
        const L: usize = 4;
        let n = self.r.len();
        self.w.clear();
        self.w.resize(n, 0.0);
        kernel.w_batch(&self.r, h, &mut self.w);
        let mut rho_l = [0.0f64; L];
        let mut n_ngb = 0usize;
        let chunks = n / L;
        for c in 0..chunks {
            let base = c * L;
            for (l, acc) in rho_l.iter_mut().enumerate() {
                let j = base + l;
                let in_range = self.r[j] < rad;
                *acc += if in_range { self.m[j] * self.w[j] } else { 0.0 };
                n_ngb += in_range as usize;
            }
        }
        for j in chunks * L..n {
            let in_range = self.r[j] < rad;
            rho_l[0] += if in_range { self.m[j] * self.w[j] } else { 0.0 };
            n_ngb += in_range as usize;
        }
        ((rho_l[0] + rho_l[1]) + (rho_l[2] + rho_l[3]), n_ngb)
    }
}

/// Iterate the smoothing length of particle `i` and sum its density.
/// `tree` must be built with per-particle search radii (`build_with_h`) over
/// the same `pos`; `h0` is the initial guess. The candidate list of the
/// first walk is cached in `cache` and re-filtered for later trial `h`
/// values (see the module docs) — `h`, `n_ngb` and the iteration
/// trajectory are exactly those of [`density_one_reference`]; `rho`
/// agrees to lane-reassociation rounding (`~1e-15` relative).
#[allow(clippy::too_many_arguments)]
pub fn density_one(
    kernel: &dyn SphKernel,
    cfg: &DensityConfig,
    tree: &Tree,
    pos: &[Vec3],
    mass: &[f64],
    i: usize,
    h0: f64,
    cache: &mut NeighborCache,
) -> DensityResult {
    let xi = pos[i];
    let mut h = h0.max(1e-12);
    let support = kernel.support();
    let mut result;
    let mut iterations = 0u32;
    let mut walks = 0u32;
    loop {
        let rad = support * h;
        if walks == 0 || rad > cache.radius {
            let target = if iterations == 0 {
                rad
            } else {
                rad * NeighborCache::REWALK_MARGIN
            };
            cache.stage(tree, pos, mass, xi, target);
            walks += 1;
        }
        let (rho, n_ngb) = cache.sum_density(kernel, h, rad);
        iterations += 1;
        result = DensityResult {
            rho,
            h,
            n_ngb,
            iterations,
            walks,
        };
        let err = (n_ngb as f64 - cfg.n_ngb_target as f64).abs() / cfg.n_ngb_target as f64;
        if err <= cfg.tolerance || iterations >= cfg.max_iter as u32 {
            break;
        }
        // Neighbour count scales with h^3: correct h geometrically, clamped
        // to avoid oscillation around sparse regions.
        let ratio = if n_ngb == 0 {
            2.0
        } else {
            (cfg.n_ngb_target as f64 / n_ngb as f64)
                .powf(1.0 / 3.0)
                .clamp(0.5, 2.0)
        };
        h *= ratio;
    }
    result
}

/// The scalar pre-cache reference: one tree walk and one scalar gather per
/// trial `h`. Retained as the equivalence baseline for [`density_one`]
/// (property tests) and the `h_iter_walk_ratio` bench denominator.
#[allow(clippy::too_many_arguments)]
pub fn density_one_reference(
    kernel: &dyn SphKernel,
    cfg: &DensityConfig,
    tree: &Tree,
    pos: &[Vec3],
    mass: &[f64],
    i: usize,
    h0: f64,
    scratch: &mut Vec<u32>,
) -> DensityResult {
    let xi = pos[i];
    let mut h = h0.max(1e-12);
    let support = kernel.support();
    let mut result;
    let mut iterations = 0u32;
    loop {
        scratch.clear();
        tree.neighbors_within(xi, support * h, scratch);
        let mut rho = 0.0;
        let mut n_ngb = 0usize;
        for &j in scratch.iter() {
            let j = j as usize;
            let r = (xi - pos[j]).norm();
            if r < support * h {
                rho += mass[j] * kernel.w(r, h);
                n_ngb += 1;
            }
        }
        iterations += 1;
        result = DensityResult {
            rho,
            h,
            n_ngb,
            iterations,
            walks: iterations,
        };
        let err = (n_ngb as f64 - cfg.n_ngb_target as f64).abs() / cfg.n_ngb_target as f64;
        if err <= cfg.tolerance || iterations >= cfg.max_iter as u32 {
            break;
        }
        // Neighbour count scales with h^3: correct h geometrically, clamped
        // to avoid oscillation around sparse regions.
        let ratio = if n_ngb == 0 {
            2.0
        } else {
            (cfg.n_ngb_target as f64 / n_ngb as f64)
                .powf(1.0 / 3.0)
                .clamp(0.5, 2.0)
        };
        h *= ratio;
    }
    result
}

/// Converge smoothing lengths and densities for all `targets` (indices into
/// `pos`). Runs particles in parallel. `h` is the in/out smoothing-length
/// array; returns (rho, n_ngb, total_iterations) per target in target order.
///
/// Allocates a fresh search-radius buffer per call; hot paths should hold
/// the buffer and call [`compute_density_into`].
pub fn compute_density(
    kernel: &dyn SphKernel,
    cfg: &DensityConfig,
    pos: &[Vec3],
    mass: &[f64],
    h: &mut [f64],
    targets: &[usize],
) -> Vec<DensityResult> {
    let mut radii = Vec::new();
    compute_density_into(kernel, cfg, pos, mass, h, targets, &mut radii)
}

/// [`compute_density`] with the per-call search-radius allocation hoisted
/// into a caller-owned scratch buffer (cleared in place, capacity kept) —
/// the solver passes its [`crate::solver::SphScratch`] so steady-state
/// density passes don't grow the heap.
pub fn compute_density_into(
    kernel: &dyn SphKernel,
    cfg: &DensityConfig,
    pos: &[Vec3],
    mass: &[f64],
    h: &mut [f64],
    targets: &[usize],
    radii: &mut Vec<f64>,
) -> Vec<DensityResult> {
    // The tree's stored per-particle radii cover the scatter side; rebuild
    // with the current (pre-iteration) h values.
    radii.clear();
    radii.extend(h.iter().map(|&hi| kernel.support() * hi));
    let tree = Tree::build_with_h(pos, mass, Some(radii), 16);
    compute_density_on_tree(kernel, cfg, &tree, pos, mass, h, targets)
}

/// The density-iteration core over a caller-provided neighbor tree: the
/// cross-substep tree-reuse entry point. The tree must index exactly
/// `pos`, with its bounding boxes current (a fresh
/// [`Tree::build_with_h`] or a [`Tree::refresh_with_h`] over these
/// positions) — correctness needs only containment, since the gather
/// search prunes by node bounding box, not by the stored radii.
pub fn compute_density_on_tree(
    kernel: &dyn SphKernel,
    cfg: &DensityConfig,
    tree: &Tree,
    pos: &[Vec3],
    mass: &[f64],
    h: &mut [f64],
    targets: &[usize],
) -> Vec<DensityResult> {
    let results: Vec<DensityResult> = targets
        .par_iter()
        .map_init(NeighborCache::default, |cache, &i| {
            density_one(kernel, cfg, tree, pos, mass, i, h[i], cache)
        })
        .collect();
    for (&i, r) in targets.iter().zip(&results) {
        h[i] = r.h;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::CubicSpline;

    /// Uniform cubic lattice with spacing `a` and particle mass `m`:
    /// expected density is exactly `m / a^3` once h is converged.
    fn lattice(n: usize, a: f64) -> (Vec<Vec3>, Vec<f64>) {
        let mut pos = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    pos.push(Vec3::new(i as f64 * a, j as f64 * a, k as f64 * a));
                }
            }
        }
        let mass = vec![1.0; pos.len()];
        (pos, mass)
    }

    #[test]
    fn uniform_lattice_density_is_exact() {
        let a = 0.7;
        let (pos, mass) = lattice(10, a);
        let mut h = vec![a * 1.2; pos.len()];
        let cfg = DensityConfig {
            n_ngb_target: 40,
            ..Default::default()
        };
        let kernel = CubicSpline;
        // Probe interior particles only (no edge truncation).
        let targets: Vec<usize> = (0..pos.len())
            .filter(|&i| {
                let p = pos[i];
                let lo = 3.0 * a;
                let hi = 6.0 * a;
                p.x > lo && p.x < hi && p.y > lo && p.y < hi && p.z > lo && p.z < hi
            })
            .collect();
        assert!(!targets.is_empty());
        let results = compute_density(&kernel, &cfg, &pos, &mass, &mut h, &targets);
        let expected = 1.0 / (a * a * a);
        for r in &results {
            assert!(
                (r.rho - expected).abs() / expected < 0.05,
                "rho {} vs expected {expected}",
                r.rho
            );
        }
    }

    #[test]
    fn neighbor_count_converges_to_target() {
        let (pos, mass) = lattice(12, 1.0);
        let mut h = vec![0.4; pos.len()]; // bad initial guess, too small
        let cfg = DensityConfig {
            n_ngb_target: 56,
            tolerance: 0.2,
            max_iter: 12,
        };
        let targets: Vec<usize> = (0..pos.len())
            .filter(|&i| {
                let p = pos[i];
                (3.0..9.0).contains(&p.x) && (3.0..9.0).contains(&p.y) && (3.0..9.0).contains(&p.z)
            })
            .collect();
        let results = compute_density(&CubicSpline, &cfg, &pos, &mass, &mut h, &targets);
        for r in &results {
            let err = (r.n_ngb as f64 - 56.0).abs() / 56.0;
            assert!(err <= 0.25, "n_ngb {} missed target", r.n_ngb);
        }
    }

    #[test]
    fn good_initial_guess_converges_in_two_iterations() {
        // The paper's claim for a proper initial guess. Count iterations by
        // calling density_one directly with a converged h as the guess.
        let (pos, mass) = lattice(10, 1.0);
        let cfg = DensityConfig {
            n_ngb_target: 56,
            tolerance: 0.15,
            max_iter: 12,
        };
        let mut h = vec![1.2; pos.len()];
        let center = pos
            .iter()
            .position(|p| (*p - Vec3::splat(4.0)).norm() < 0.1)
            .unwrap();
        let _ = compute_density(&CubicSpline, &cfg, &pos, &mass, &mut h, &[center]);
        // Second pass starting from the converged h: a single re-evaluation
        // must already be within tolerance (no further h change).
        let h_before = h[center];
        let _ = compute_density(&CubicSpline, &cfg, &pos, &mass, &mut h, &[center]);
        assert_eq!(h[center], h_before, "converged h should be a fixed point");
    }

    #[test]
    fn isolated_particle_grows_h_until_cap() {
        let pos = vec![Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let mut h = vec![0.1, 0.1];
        let cfg = DensityConfig {
            n_ngb_target: 8,
            tolerance: 0.1,
            max_iter: 5,
        };
        let r = compute_density(&CubicSpline, &cfg, &pos, &mass, &mut h, &[0]);
        // It can't reach 8 neighbours; it must stop after max_iter with a
        // larger h and a finite density.
        assert!(h[0] > 0.1);
        assert!(r[0].rho >= 0.0);
    }

    #[test]
    fn cached_iteration_matches_reference_and_saves_walks() {
        // The cached h-iteration must reproduce the walk-per-iteration
        // reference exactly in its integer trajectory (h, n_ngb,
        // iterations) and to reassociation rounding in rho — across
        // shrinking (h too big), growing (h too small) and converged
        // initial guesses.
        let (pos, mass) = lattice(10, 1.0);
        let radii: Vec<f64> = pos.iter().map(|_| 2.0 * 1.3).collect();
        let tree = Tree::build_with_h(&pos, &mass, Some(&radii), 16);
        let cfg = DensityConfig {
            n_ngb_target: 56,
            tolerance: 0.05,
            max_iter: 12,
        };
        let mut cache = NeighborCache::default();
        let mut scratch = Vec::new();
        let mut saved_walks = false;
        for i in 0..pos.len() {
            for h0 in [0.5, 0.9, 1.3, 1.9, 2.6] {
                let a = density_one(&CubicSpline, &cfg, &tree, &pos, &mass, i, h0, &mut cache);
                let b = density_one_reference(
                    &CubicSpline,
                    &cfg,
                    &tree,
                    &pos,
                    &mass,
                    i,
                    h0,
                    &mut scratch,
                );
                assert_eq!(a.h.to_bits(), b.h.to_bits(), "h i={i} h0={h0}");
                assert_eq!(a.n_ngb, b.n_ngb, "n_ngb i={i} h0={h0}");
                assert_eq!(a.iterations, b.iterations, "iterations i={i} h0={h0}");
                assert!(a.walks <= a.iterations, "walks i={i} h0={h0}");
                let rel = (a.rho - b.rho).abs() / b.rho.abs().max(1e-300);
                assert!(rel < 1e-12, "rho i={i} h0={h0} rel {rel}");
                if a.iterations > 1 && a.walks < a.iterations {
                    saved_walks = true;
                }
            }
        }
        assert!(saved_walks, "no particle ever re-filtered its cached list");
    }

    #[test]
    fn shrinking_h_iterations_reuse_one_walk() {
        // An overestimated h only ever shrinks, so the whole iteration
        // must be served by the single initial walk.
        let (pos, mass) = lattice(10, 1.0);
        let radii = vec![2.0 * 3.0; pos.len()];
        let tree = Tree::build_with_h(&pos, &mass, Some(&radii), 16);
        let cfg = DensityConfig {
            n_ngb_target: 40,
            tolerance: 0.1,
            max_iter: 12,
        };
        let center = pos.iter().position(|p| *p == Vec3::splat(4.0)).unwrap();
        let mut cache = NeighborCache::default();
        let r = density_one(
            &CubicSpline,
            &cfg,
            &tree,
            &pos,
            &mass,
            center,
            3.0,
            &mut cache,
        );
        assert!(r.iterations >= 2, "h0=3.0 must actually iterate");
        assert_eq!(r.walks, 1, "shrinking h must never re-walk");
    }

    #[test]
    fn density_scales_linearly_with_mass() {
        let (pos, mass) = lattice(8, 1.0);
        let mass2: Vec<f64> = mass.iter().map(|m| m * 3.0).collect();
        let cfg = DensityConfig::default();
        let center = pos.iter().position(|p| *p == Vec3::splat(4.0)).unwrap();
        let mut h1 = vec![1.3; pos.len()];
        let mut h2 = vec![1.3; pos.len()];
        let r1 = compute_density(&CubicSpline, &cfg, &pos, &mass, &mut h1, &[center]);
        let r2 = compute_density(&CubicSpline, &cfg, &pos, &mass2, &mut h2, &[center]);
        assert!((r2[0].rho / r1[0].rho - 3.0).abs() < 1e-9);
    }
}
