//! SPH smoothing kernels.

use pikg::PpaTable;

/// A spherically symmetric SPH kernel with compact support `q = r/h < 2`.
pub trait SphKernel: Sync {
    /// Kernel value `W(r, h)`.
    fn w(&self, r: f64, h: f64) -> f64;
    /// Radial derivative `dW/dr (r, h)`.
    fn dwdr(&self, r: f64, h: f64) -> f64;
    /// `dW/dh (r, h)` — needed by the smoothing-length iteration.
    fn dwdh(&self, r: f64, h: f64) -> f64 {
        // Scaling identity: W = h^-3 f(q) => dW/dh = -(3 W + q dW/dq)/h.
        let q = r / h;
        -(3.0 * self.w(r, h) + q * h * self.dwdr(r, h)) / h
    }
    /// Support radius in units of `h` (2 for the spline family).
    fn support(&self) -> f64 {
        2.0
    }

    /// Batched `W(r[i], h)` with a shared smoothing length: fills
    /// `out[i] = w(r[i], h)`. The default loops the scalar method;
    /// branchless kernels override with a loop the compiler can
    /// vectorize. Overrides must produce the exact same values as the
    /// scalar method element-wise (the density cache relies on it).
    fn w_batch(&self, r: &[f64], h: f64, out: &mut [f64]) {
        for (o, &ri) in out.iter_mut().zip(r) {
            *o = self.w(ri, h);
        }
    }

    /// Batched `dW/dr (r[i], h)` with a shared smoothing length.
    fn dwdr_batch(&self, r: &[f64], h: f64, out: &mut [f64]) {
        for (o, &ri) in out.iter_mut().zip(r) {
            *o = self.dwdr(ri, h);
        }
    }

    /// Batched `dW/dr (r[i], h[i])` with a per-element smoothing length —
    /// the j-side gradient of the symmetrized force kernel.
    fn dwdr_batch_per_h(&self, r: &[f64], h: &[f64], out: &mut [f64]) {
        for ((o, &ri), &hi) in out.iter_mut().zip(r).zip(h) {
            *o = self.dwdr(ri, hi);
        }
    }
}

/// The M4 cubic spline (Monaghan & Lattanzio 1985), the kernel ASURA uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubicSpline;

impl CubicSpline {
    /// Dimensionless shape `f(q)` with 3-D normalization `1/pi` folded in.
    #[inline]
    pub fn shape(q: f64) -> f64 {
        let a = (2.0 - q).max(0.0);
        let b = (1.0 - q).max(0.0);
        std::f64::consts::FRAC_1_PI * (0.25 * a * a * a - b * b * b)
    }

    /// Shape derivative `df/dq`.
    #[inline]
    pub fn shape_deriv(q: f64) -> f64 {
        let a = (2.0 - q).max(0.0);
        let b = (1.0 - q).max(0.0);
        std::f64::consts::FRAC_1_PI * (3.0 * b * b - 0.75 * a * a)
    }
}

impl SphKernel for CubicSpline {
    #[inline]
    fn w(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        Self::shape(r * hinv) * hinv * hinv * hinv
    }

    #[inline]
    fn dwdr(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        Self::shape_deriv(r * hinv) * hinv * hinv * hinv * hinv
    }

    // The spline shape is branchless (its compact support comes from the
    // `max(0)` clamps), so the batch loops below carry no control flow and
    // vectorize. Each element evaluates the exact scalar expression in the
    // same operation order, so values are bitwise identical to the scalar
    // methods.

    fn w_batch(&self, r: &[f64], h: f64, out: &mut [f64]) {
        let hinv = 1.0 / h;
        for (o, &ri) in out.iter_mut().zip(r) {
            *o = Self::shape(ri * hinv) * hinv * hinv * hinv;
        }
    }

    fn dwdr_batch(&self, r: &[f64], h: f64, out: &mut [f64]) {
        let hinv = 1.0 / h;
        for (o, &ri) in out.iter_mut().zip(r) {
            *o = Self::shape_deriv(ri * hinv) * hinv * hinv * hinv * hinv;
        }
    }

    fn dwdr_batch_per_h(&self, r: &[f64], h: &[f64], out: &mut [f64]) {
        for ((o, &ri), &hi) in out.iter_mut().zip(r).zip(h) {
            let hinv = 1.0 / hi;
            *o = Self::shape_deriv(ri * hinv) * hinv * hinv * hinv * hinv;
        }
    }
}

/// The Wendland C2 kernel (Wendland 1995; Dehnen & Aly 2012): free of the
/// pairing instability at high neighbour counts — relevant because the
/// paper runs with ~100 neighbours, where the cubic spline is marginal.
/// Support radius 2h, 3-D normalization `21/(16 pi)` on `q in [0, 2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WendlandC2;

impl WendlandC2 {
    /// Dimensionless shape with normalization folded in: for u = q/2 in
    /// [0, 1): `f(q) = 21/(16 pi) (1-u)^4 (4u + 1)`.
    #[inline]
    pub fn shape(q: f64) -> f64 {
        let u = 0.5 * q;
        if u >= 1.0 {
            return 0.0;
        }
        let omu = 1.0 - u;
        let omu2 = omu * omu;
        21.0 / (16.0 * std::f64::consts::PI) * omu2 * omu2 * (4.0 * u + 1.0)
    }

    /// Shape derivative `df/dq`.
    #[inline]
    pub fn shape_deriv(q: f64) -> f64 {
        let u = 0.5 * q;
        if u >= 1.0 {
            return 0.0;
        }
        let omu = 1.0 - u;
        // d/du [(1-u)^4 (4u+1)] = -20 u (1-u)^3 ; du/dq = 1/2.
        21.0 / (16.0 * std::f64::consts::PI) * (-10.0 * u) * omu * omu * omu
    }
}

impl SphKernel for WendlandC2 {
    #[inline]
    fn w(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        Self::shape(r * hinv) * hinv * hinv * hinv
    }

    #[inline]
    fn dwdr(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        Self::shape_deriv(r * hinv) * hinv * hinv * hinv * hinv
    }
}

/// The same spline evaluated through PPA tables (paper §3.5): a table lookup
/// plus a short Horner chain instead of branches — the SIMD-friendly path.
#[derive(Debug, Clone)]
pub struct PpaSpline {
    w_table: PpaTable,
    dw_table: PpaTable,
}

impl PpaSpline {
    /// Build tables with `sections` subdomains of cubic polynomials. The
    /// spline is piecewise cubic, so section counts that are multiples of 2
    /// reproduce it to machine precision.
    pub fn new(sections: usize) -> Self {
        PpaSpline {
            w_table: PpaTable::fit(CubicSpline::shape, 0.0, 2.0, sections, 3),
            dw_table: PpaTable::fit(CubicSpline::shape_deriv, 0.0, 2.0, sections, 3),
        }
    }

    /// Maximum fit error of the value table.
    pub fn max_error(&self) -> f64 {
        self.w_table.max_error().max(self.dw_table.max_error())
    }
}

impl Default for PpaSpline {
    fn default() -> Self {
        Self::new(16)
    }
}

impl SphKernel for PpaSpline {
    #[inline]
    fn w(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        let q = r * hinv;
        if q >= 2.0 {
            return 0.0;
        }
        self.w_table.eval(q) * hinv * hinv * hinv
    }

    #[inline]
    fn dwdr(&self, r: f64, h: f64) -> f64 {
        let hinv = 1.0 / h;
        let q = r * hinv;
        if q >= 2.0 {
            return 0.0;
        }
        self.dw_table.eval(q) * hinv * hinv * hinv * hinv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_normalizes_to_unity() {
        // 4 pi Int_0^2 W(r,h) r^2 dr = 1 for any h (Simpson's rule).
        for h in [0.5, 1.0, 3.0] {
            let k = CubicSpline;
            let n = 4000;
            let rmax = 2.0 * h;
            let dr = rmax / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let r0 = i as f64 * dr;
                let rm = r0 + 0.5 * dr;
                let r1 = r0 + dr;
                let f = |r: f64| k.w(r, h) * r * r;
                integral += dr / 6.0 * (f(r0) + 4.0 * f(rm) + f(r1));
            }
            integral *= 4.0 * std::f64::consts::PI;
            assert!((integral - 1.0).abs() < 1e-6, "h={h}: {integral}");
        }
    }

    #[test]
    fn compact_support_is_two_h() {
        let k = CubicSpline;
        assert_eq!(k.w(2.0001, 1.0), 0.0);
        assert_eq!(k.dwdr(2.5, 1.0), 0.0);
        assert!(k.w(1.9999, 1.0) > 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let k = CubicSpline;
        let h = 1.3;
        for &r in &[0.1, 0.5, 0.9, 1.1, 1.7] {
            let d = 1e-6;
            let fd = (k.w(r + d, h) - k.w(r - d, h)) / (2.0 * d);
            assert!((k.dwdr(r, h) - fd).abs() < 1e-6, "r={r}");
        }
    }

    #[test]
    fn dwdh_matches_finite_difference() {
        let k = CubicSpline;
        let r = 0.8;
        for &h in &[0.7, 1.0, 1.5] {
            let d = 1e-6;
            let fd = (k.w(r, h + d) - k.w(r, h - d)) / (2.0 * d);
            assert!((k.dwdh(r, h) - fd).abs() < 1e-5, "h={h}");
        }
    }

    #[test]
    fn kernel_is_monotone_decreasing() {
        let k = CubicSpline;
        let mut prev = k.w(0.0, 1.0);
        for i in 1..100 {
            let r = 2.0 * i as f64 / 100.0;
            let w = k.w(r, 1.0);
            assert!(w <= prev + 1e-14);
            prev = w;
        }
        // And the derivative is never positive.
        for i in 0..100 {
            assert!(k.dwdr(2.0 * i as f64 / 100.0, 1.0) <= 1e-14);
        }
    }

    #[test]
    fn wendland_normalizes_to_unity() {
        let k = WendlandC2;
        for h in [0.7, 1.0, 2.0] {
            let n = 4000;
            let rmax = 2.0 * h;
            let dr = rmax / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let r0 = i as f64 * dr;
                let f = |r: f64| k.w(r, h) * r * r;
                integral += dr / 6.0 * (f(r0) + 4.0 * f(r0 + 0.5 * dr) + f(r0 + dr));
            }
            integral *= 4.0 * std::f64::consts::PI;
            assert!((integral - 1.0).abs() < 1e-6, "h={h}: {integral}");
        }
    }

    #[test]
    fn wendland_derivative_matches_finite_difference() {
        let k = WendlandC2;
        for &r in &[0.1, 0.7, 1.3, 1.9] {
            let d = 1e-6;
            let fd = (k.w(r + d, 1.0) - k.w(r - d, 1.0)) / (2.0 * d);
            assert!((k.dwdr(r, 1.0) - fd).abs() < 1e-6, "r={r}");
        }
    }

    #[test]
    fn wendland_is_more_centrally_peaked_and_monotone() {
        // W(0) = 21/(16 pi) ~ 0.418 vs the spline's 1/pi ~ 0.318: the
        // Wendland kernel concentrates more weight centrally, which is what
        // suppresses the pairing instability at high neighbour counts.
        let w0 = WendlandC2.w(0.0, 1.0);
        let c0 = CubicSpline.w(0.0, 1.0);
        assert!((w0 - 21.0 / (16.0 * std::f64::consts::PI)).abs() < 1e-12);
        assert!(w0 > c0);
        assert_eq!(WendlandC2.w(2.0, 1.0), 0.0);
        // Monotone decreasing with non-positive gradient over the support.
        let mut prev = w0;
        for i in 1..=100 {
            let q = 2.0 * i as f64 / 100.0;
            let w = WendlandC2.w(q, 1.0);
            assert!(w <= prev + 1e-14);
            assert!(WendlandC2.dwdr(q.min(1.999), 1.0) <= 1e-14);
            prev = w;
        }
    }

    #[test]
    fn ppa_spline_is_machine_precise() {
        let ppa = PpaSpline::new(16);
        let exact = CubicSpline;
        assert!(ppa.max_error() < 1e-13, "fit error {}", ppa.max_error());
        for i in 0..200 {
            let r = 2.2 * i as f64 / 200.0;
            assert!((ppa.w(r, 1.1) - exact.w(r, 1.1)).abs() < 1e-12);
            assert!((ppa.dwdr(r, 1.1) - exact.dwdr(r, 1.1)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_methods_match_scalar_methods() {
        // The default batch impls loop the scalar methods; the CubicSpline
        // overrides must stay bitwise identical to them element-wise.
        let r: Vec<f64> = (0..97).map(|i| 2.3 * i as f64 / 96.0).collect();
        let hj: Vec<f64> = (0..97).map(|i| 0.6 + 0.01 * (i % 13) as f64).collect();
        let kernels: [&dyn SphKernel; 3] = [&CubicSpline, &WendlandC2, &PpaSpline::new(16)];
        for k in kernels {
            let mut w = vec![0.0; r.len()];
            let mut dw = vec![0.0; r.len()];
            let mut dwj = vec![0.0; r.len()];
            k.w_batch(&r, 1.1, &mut w);
            k.dwdr_batch(&r, 1.1, &mut dw);
            k.dwdr_batch_per_h(&r, &hj, &mut dwj);
            for i in 0..r.len() {
                assert_eq!(w[i].to_bits(), k.w(r[i], 1.1).to_bits(), "w[{i}]");
                assert_eq!(dw[i].to_bits(), k.dwdr(r[i], 1.1).to_bits(), "dwdr[{i}]");
                assert_eq!(
                    dwj[i].to_bits(),
                    k.dwdr(r[i], hj[i]).to_bits(),
                    "dwdr_per_h[{i}]"
                );
            }
        }
    }

    #[test]
    fn ppa_spline_vanishes_outside_support() {
        let ppa = PpaSpline::default();
        assert_eq!(ppa.w(3.0, 1.0), 0.0);
        assert_eq!(ppa.dwdr(2.01, 1.0), 0.0);
    }
}
