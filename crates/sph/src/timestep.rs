//! Timestep criteria.
//!
//! The CFL condition is the villain of the paper (§1): `dt <= C h / v_sig`
//! collapses to ~100 yr inside SN bubbles at 1 M_sun resolution, and since
//! `h ∝ (m/rho)^{1/3}`, the required timestep shrinks with the particle
//! mass as `dt ∝ m^{5/6}` at fixed ambient conditions.

/// Courant factor (typical SPH value).
pub const DEFAULT_CFL: f64 = 0.3;

/// CFL timestep of one particle: `C h / v_sig`, with `v_sig` at least the
/// sound speed.
#[inline]
pub fn dt_cfl(cfl: f64, h: f64, cs: f64, v_sig_max: f64) -> f64 {
    cfl * h / v_sig_max.max(cs).max(1e-300)
}

/// Acceleration criterion `C sqrt(h / |a|)` guarding against force spikes.
#[inline]
pub fn dt_accel(cfl: f64, h: f64, a_norm: f64) -> f64 {
    if a_norm <= 0.0 {
        f64::INFINITY
    } else {
        cfl * (h / a_norm).sqrt()
    }
}

/// Block (power-of-two hierarchical) timestep: the largest `dt_max / 2^k`
/// not exceeding `dt`, as used by the conventional adaptive-timestep scheme
/// the paper compares against (§5.3).
pub fn quantize_block(dt: f64, dt_max: f64) -> f64 {
    assert!(dt_max > 0.0);
    if dt >= dt_max {
        return dt_max;
    }
    let mut q = dt_max;
    // 2^-60 dt_max guards against pathological inputs while far exceeding
    // any physical dynamic range we integrate.
    for _ in 0..60 {
        q *= 0.5;
        if q <= dt {
            return q;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GammaLawEos;

    #[test]
    fn cfl_scales_linearly_with_h() {
        let d1 = dt_cfl(0.3, 1.0, 10.0, 10.0);
        let d2 = dt_cfl(0.3, 2.0, 10.0, 10.0);
        assert!((d2 / d1 - 2.0).abs() < 1e-14);
    }

    #[test]
    fn sn_bubble_timestep_is_years_at_1msun_resolution() {
        // Paper §1: sound speed ~1000 km/s in an SN region and 1 M_sun
        // resolution give dt of order 100 yr. Take rho ~ 1 M_sun/pc^3
        // (n~40/cm^3), m = 1 M_sun, N_ngb ~ 100 => h ~ (3*100/(4 pi rho))^{1/3}.
        let m: f64 = 1.0;
        let rho: f64 = 1.0;
        let n_ngb: f64 = 100.0;
        let h = (3.0 * n_ngb * m / (4.0 * std::f64::consts::PI * rho)).powf(1.0 / 3.0) / 2.0;
        let c_sn = 1000.0 * 1.02271; // 1000 km/s in pc/Myr
        let dt = dt_cfl(DEFAULT_CFL, h, c_sn, c_sn); // Myr
        let dt_yr = dt * 1e6;
        assert!(
            (100.0..2000.0).contains(&dt_yr),
            "SN CFL timestep {dt_yr} yr should be O(100-1000) yr"
        );
    }

    #[test]
    fn timestep_scales_as_m_to_the_five_sixths() {
        // dt ∝ h ∝ (m/rho)^{1/3} with rho ∝ m^... the paper's dt ∝ m^{5/6}
        // comes from rho fixed by the ISM but h including the m^{1/3} and
        // the CFL sound-crossing of the *resolved* shell: at fixed rho and
        // c, dt ∝ m^{1/3}; the extra m^{1/2} enters through the shell
        // density contrast. Here we verify the h ∝ m^{1/3} part.
        let h_of = |m: f64| (m / 1.0f64).powf(1.0 / 3.0);
        let r = dt_cfl(0.3, h_of(8.0), 1.0, 1.0) / dt_cfl(0.3, h_of(1.0), 1.0, 1.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accel_criterion_handles_zero_acceleration() {
        assert!(dt_accel(0.3, 1.0, 0.0).is_infinite());
        assert!(dt_accel(0.3, 1.0, 4.0) > 0.0);
    }

    #[test]
    fn block_quantization_is_power_of_two_fraction() {
        let dt_max = 1.0;
        for &dt in &[0.9, 0.5, 0.3, 0.13, 0.01] {
            let q = quantize_block(dt, dt_max);
            assert!(q <= dt || (dt >= dt_max && q == dt_max));
            let k = (dt_max / q).log2();
            assert!((k - k.round()).abs() < 1e-12, "not a power of two: {q}");
        }
        assert_eq!(quantize_block(5.0, 1.0), 1.0);
    }

    #[test]
    fn hot_bubble_forces_smaller_blocks_than_cold_disk() {
        let eos = GammaLawEos::default();
        let h = 1.0;
        let dt_cold = dt_cfl(0.3, h, eos.sound_speed(eos.u_from_temperature(10.0)), 0.0);
        let dt_hot = dt_cfl(0.3, h, eos.sound_speed(eos.u_from_temperature(1e7)), 0.0);
        let qc = quantize_block(dt_cold, 1.0);
        let qh = quantize_block(dt_hot, 1.0);
        assert!(qh < qc / 100.0, "hot {qh} vs cold {qc}");
    }
}
