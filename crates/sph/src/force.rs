//! Symmetrized SPH momentum and energy equations with Monaghan artificial
//! viscosity.

use crate::kernel::SphKernel;
use fdps::Vec3;

/// Per-particle hydrodynamic quantities consumed by the force kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct HydroInput {
    pub pos: Vec3,
    pub vel: Vec3,
    pub mass: f64,
    pub h: f64,
    pub rho: f64,
    /// `P / rho^2`.
    pub p_over_rho2: f64,
    /// Sound speed.
    pub cs: f64,
}

/// Accumulated hydro force and heating for one particle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HydroAccum {
    pub acc: Vec3,
    pub dudt: f64,
    /// Maximum signal velocity seen over neighbours (for the CFL condition).
    pub v_sig_max: f64,
}

/// Artificial-viscosity parameters (Monaghan 1992: alpha=1, beta=2).
#[derive(Debug, Clone, Copy)]
pub struct Viscosity {
    pub alpha: f64,
    pub beta: f64,
    /// Softening of the mu denominator (eta^2 in units of h^2).
    pub eta2: f64,
}

impl Default for Viscosity {
    fn default() -> Self {
        Viscosity {
            alpha: 1.0,
            beta: 2.0,
            eta2: 0.01,
        }
    }
}

/// Evaluate the pairwise interaction of particle `i` with neighbour `j`,
/// accumulating into `out`. Symmetric formulation: using it with roles
/// swapped conserves momentum and energy identically.
pub fn pair_force(
    kernel: &dyn SphKernel,
    visc: &Viscosity,
    pi: &HydroInput,
    pj: &HydroInput,
    out: &mut HydroAccum,
) {
    let d = pi.pos - pj.pos;
    let r2 = d.norm2();
    if r2 == 0.0 {
        return;
    }
    let r = r2.sqrt();
    let support = kernel.support();
    if r >= support * pi.h.max(pj.h) {
        return;
    }
    // Arithmetic-mean kernel gradient of both smoothing lengths.
    let dw = 0.5 * (kernel.dwdr(r, pi.h) + kernel.dwdr(r, pj.h));
    let grad = d * (dw / r);

    let dv = pi.vel - pj.vel;
    let vdotr = dv.dot(d);

    // Monaghan viscosity, active only for approaching pairs.
    let mut visc_term = 0.0;
    let mut v_sig = pi.cs + pj.cs;
    if vdotr < 0.0 {
        let h_mean = 0.5 * (pi.h + pj.h);
        let mu = h_mean * vdotr / (r2 + visc.eta2 * h_mean * h_mean);
        let c_mean = 0.5 * (pi.cs + pj.cs);
        let rho_mean = 0.5 * (pi.rho + pj.rho);
        visc_term = (-visc.alpha * c_mean * mu + visc.beta * mu * mu) / rho_mean;
        v_sig += -3.0 * mu;
    }

    let fac = pi.p_over_rho2 + pj.p_over_rho2 + visc_term;
    out.acc -= grad * (pj.mass * fac);
    out.dudt += pj.mass * (pi.p_over_rho2 + 0.5 * visc_term) * dv.dot(grad);
    out.v_sig_max = out.v_sig_max.max(v_sig);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GammaLawEos;
    use crate::kernel::CubicSpline;

    fn make(pos: Vec3, vel: Vec3, rho: f64, u: f64) -> HydroInput {
        let eos = GammaLawEos::default();
        HydroInput {
            pos,
            vel,
            mass: 1.0,
            h: 1.0,
            rho,
            p_over_rho2: eos.p_over_rho2(rho, u),
            cs: eos.sound_speed(u),
        }
    }

    #[test]
    fn pressure_force_is_repulsive_along_separation() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let b = make(Vec3::new(0.8, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &b, &mut out);
        // a sits at smaller x: pressure pushes it toward -x.
        assert!(out.acc.x < 0.0, "acc {:?}", out.acc);
        assert_eq!(out.acc.y, 0.0);
    }

    #[test]
    fn newtons_third_law_momentum_and_energy() {
        let a = make(Vec3::ZERO, Vec3::new(0.3, 0.0, 0.0), 1.5, 2.0);
        let b = make(
            Vec3::new(0.5, 0.4, -0.2),
            Vec3::new(-0.1, 0.2, 0.0),
            0.8,
            1.0,
        );
        let mut fa = HydroAccum::default();
        let mut fb = HydroAccum::default();
        let visc = Viscosity::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut fa);
        pair_force(&CubicSpline, &visc, &b, &a, &mut fb);
        // Momentum: m_a a_a + m_b a_b = 0.
        let net = fa.acc * a.mass + fb.acc * b.mass;
        assert!(net.norm() < 1e-14, "net {net:?}");
        // Energy: m_a du_a + m_b du_b = -d/dt kinetic = -(m a)·v summed.
        let dk = a.mass * fa.acc.dot(a.vel) + b.mass * fb.acc.dot(b.vel);
        let du = a.mass * fa.dudt + b.mass * fb.dudt;
        assert!((dk + du).abs() < 1e-12, "energy leak {}", dk + du);
    }

    #[test]
    fn viscosity_only_for_approaching_pairs() {
        let visc = Viscosity::default();
        // Receding: viscosity off, dudt is pure PdV (negative for expansion).
        let a = make(Vec3::ZERO, Vec3::new(-1.0, 0.0, 0.0), 1.0, 1.0);
        let b = make(Vec3::new(0.7, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut out);
        assert!(out.dudt < 0.0, "expansion must cool: {}", out.dudt);
        let receding_vsig = out.v_sig_max;

        // Approaching: viscosity raises both the force and v_sig.
        let a2 = make(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0, 1.0);
        let b2 = make(
            Vec3::new(0.7, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            1.0,
            1.0,
        );
        let mut out2 = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a2, &b2, &mut out2);
        assert!(out2.dudt > 0.0, "compression must heat: {}", out2.dudt);
        assert!(out2.v_sig_max > receding_vsig);
    }

    #[test]
    fn no_interaction_beyond_support() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let b = make(Vec3::new(2.5, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &b, &mut out);
        assert_eq!(out, HydroAccum::default());
    }

    #[test]
    fn coincident_particles_are_skipped() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &a, &mut out);
        assert_eq!(out, HydroAccum::default());
    }

    #[test]
    fn asymmetric_smoothing_lengths_still_conserve() {
        let mut a = make(Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), 2.0, 3.0);
        let mut b = make(Vec3::new(0.9, 0.1, 0.0), Vec3::ZERO, 0.5, 0.7);
        a.h = 0.6;
        b.h = 1.4;
        let visc = Viscosity::default();
        let mut fa = HydroAccum::default();
        let mut fb = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut fa);
        pair_force(&CubicSpline, &visc, &b, &a, &mut fb);
        assert!((fa.acc * a.mass + fb.acc * b.mass).norm() < 1e-14);
    }
}
