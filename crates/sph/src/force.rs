//! Symmetrized SPH momentum and energy equations with Monaghan artificial
//! viscosity.
//!
//! Two force paths live here: [`pair_force`], the scalar per-pair
//! reference with early-out branches, and [`force_batch`], the production
//! kernel — one target against its whole staged candidate list
//! ([`ForceBatch`]), with the early-outs replaced by multiplicative masks
//! and the kernel gradients evaluated through the batch trait methods so
//! the inner loop is branch-free and vectorizable. Both evaluate the
//! identical per-pair arithmetic; they differ only in summation order
//! (the batch reduces over fixed lanes), so results agree to
//! reassociation rounding and each path is individually deterministic.

use crate::kernel::SphKernel;
use fdps::Vec3;

/// Per-particle hydrodynamic quantities consumed by the force kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct HydroInput {
    pub pos: Vec3,
    pub vel: Vec3,
    pub mass: f64,
    pub h: f64,
    pub rho: f64,
    /// `P / rho^2`.
    pub p_over_rho2: f64,
    /// Sound speed.
    pub cs: f64,
}

/// Accumulated hydro force and heating for one particle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HydroAccum {
    pub acc: Vec3,
    pub dudt: f64,
    /// Maximum signal velocity seen over neighbours (for the CFL condition).
    pub v_sig_max: f64,
}

/// Artificial-viscosity parameters (Monaghan 1992: alpha=1, beta=2).
#[derive(Debug, Clone, Copy)]
pub struct Viscosity {
    pub alpha: f64,
    pub beta: f64,
    /// Softening of the mu denominator (eta^2 in units of h^2).
    pub eta2: f64,
}

impl Default for Viscosity {
    fn default() -> Self {
        Viscosity {
            alpha: 1.0,
            beta: 2.0,
            eta2: 0.01,
        }
    }
}

/// Evaluate the pairwise interaction of particle `i` with neighbour `j`,
/// accumulating into `out`. Symmetric formulation: using it with roles
/// swapped conserves momentum and energy identically.
pub fn pair_force(
    kernel: &dyn SphKernel,
    visc: &Viscosity,
    pi: &HydroInput,
    pj: &HydroInput,
    out: &mut HydroAccum,
) {
    let d = pi.pos - pj.pos;
    let r2 = d.norm2();
    if r2 == 0.0 {
        return;
    }
    let r = r2.sqrt();
    let support = kernel.support();
    if r >= support * pi.h.max(pj.h) {
        return;
    }
    // Arithmetic-mean kernel gradient of both smoothing lengths.
    let dw = 0.5 * (kernel.dwdr(r, pi.h) + kernel.dwdr(r, pj.h));
    let grad = d * (dw / r);

    let dv = pi.vel - pj.vel;
    let vdotr = dv.dot(d);

    // Monaghan viscosity, active only for approaching pairs.
    let mut visc_term = 0.0;
    let mut v_sig = pi.cs + pj.cs;
    if vdotr < 0.0 {
        let h_mean = 0.5 * (pi.h + pj.h);
        let mu = h_mean * vdotr / (r2 + visc.eta2 * h_mean * h_mean);
        let c_mean = 0.5 * (pi.cs + pj.cs);
        let rho_mean = 0.5 * (pi.rho + pj.rho);
        visc_term = (-visc.alpha * c_mean * mu + visc.beta * mu * mu) / rho_mean;
        v_sig += -3.0 * mu;
    }

    let fac = pi.p_over_rho2 + pj.p_over_rho2 + visc_term;
    out.acc -= grad * (pj.mass * fac);
    out.dudt += pj.mass * (pi.p_over_rho2 + 0.5 * visc_term) * dv.dot(grad);
    out.v_sig_max = out.v_sig_max.max(v_sig);
}

/// Lane count of [`force_batch`]'s accumulators. Fixed — never derived
/// from the machine — so the reduction order, and with it every bit of
/// the result, is identical across hosts and thread counts.
pub const FORCE_LANES: usize = 4;

/// One target's candidate list staged struct-of-arrays: separations,
/// velocity differences and j-side scalars laid out column-wise so
/// [`force_batch`]'s inner loop runs over contiguous lanes instead of
/// gathering through `HydroInput` structs. Owned per rayon worker by the
/// solver; [`ForceBatch::stage`] clears in place, keeping capacity.
#[derive(Debug, Clone, Default)]
pub struct ForceBatch {
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    dvx: Vec<f64>,
    dvy: Vec<f64>,
    dvz: Vec<f64>,
    r2: Vec<f64>,
    r: Vec<f64>,
    hj: Vec<f64>,
    mj: Vec<f64>,
    rhoj: Vec<f64>,
    p2j: Vec<f64>,
    csj: Vec<f64>,
    /// `dW/dr (r, h_i)` scratch.
    dwi: Vec<f64>,
    /// `dW/dr (r, h_j)` scratch.
    dwj: Vec<f64>,
}

impl ForceBatch {
    /// Stage the candidates `ngb` (indices into `inputs`) against target
    /// `pi`. The target's own index needs no exclusion: `r2 == 0` rows
    /// are masked to an exactly-zero contribution by [`force_batch`].
    pub fn stage(&mut self, pi: &HydroInput, inputs: &[HydroInput], ngb: &[u32]) {
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        self.dvx.clear();
        self.dvy.clear();
        self.dvz.clear();
        self.r2.clear();
        self.r.clear();
        self.hj.clear();
        self.mj.clear();
        self.rhoj.clear();
        self.p2j.clear();
        self.csj.clear();
        for &j in ngb {
            let pj = &inputs[j as usize];
            let d = pi.pos - pj.pos;
            let dv = pi.vel - pj.vel;
            let r2 = d.norm2();
            self.dx.push(d.x);
            self.dy.push(d.y);
            self.dz.push(d.z);
            self.dvx.push(dv.x);
            self.dvy.push(dv.y);
            self.dvz.push(dv.z);
            self.r2.push(r2);
            self.r.push(r2.sqrt());
            self.hj.push(pj.h);
            self.mj.push(pj.mass);
            self.rhoj.push(pj.rho);
            self.p2j.push(pj.p_over_rho2);
            self.csj.push(pj.cs);
        }
    }

    /// Number of staged candidates.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }
}

/// Accumulate the hydro force on `pi` from every candidate staged in
/// `batch` — the branchless batched form of [`pair_force`].
///
/// [`pair_force`]'s early-outs become masks: `r2 == 0` rows zero the
/// inverse distance (so the gradient, and with it the acceleration and
/// heating terms, vanish exactly), and the signal velocity is gated on
/// `r2 > 0 && r < support * max(h_i, h_j)`. Out-of-support rows need no
/// gradient mask because every kernel here has `dW/dr = 0` at and beyond
/// its support radius — which force_batch requires of the kernel.
/// Accumulation runs over [`FORCE_LANES`] lanes reduced in a fixed order.
pub fn force_batch(
    kernel: &dyn SphKernel,
    visc: &Viscosity,
    pi: &HydroInput,
    batch: &mut ForceBatch,
    out: &mut HydroAccum,
) {
    let n = batch.r.len();
    batch.dwi.clear();
    batch.dwi.resize(n, 0.0);
    batch.dwj.clear();
    batch.dwj.resize(n, 0.0);
    kernel.dwdr_batch(&batch.r, pi.h, &mut batch.dwi);
    kernel.dwdr_batch_per_h(&batch.r, &batch.hj, &mut batch.dwj);
    let support = kernel.support();

    let mut ax = [0.0f64; FORCE_LANES];
    let mut ay = [0.0f64; FORCE_LANES];
    let mut az = [0.0f64; FORCE_LANES];
    let mut du = [0.0f64; FORCE_LANES];
    let mut vs = [0.0f64; FORCE_LANES];

    let body = |batch: &ForceBatch, j: usize| -> (f64, f64, f64, f64, f64) {
        let r2 = batch.r2[j];
        let r = batch.r[j];
        let hj = batch.hj[j];
        let in_range = r2 > 0.0 && r < support * pi.h.max(hj);
        let rinv = if r2 > 0.0 { 1.0 / r } else { 0.0 };
        let dw = 0.5 * (batch.dwi[j] + batch.dwj[j]);
        let gf = dw * rinv;
        let gx = batch.dx[j] * gf;
        let gy = batch.dy[j] * gf;
        let gz = batch.dz[j] * gf;
        let vdotr =
            batch.dvx[j] * batch.dx[j] + batch.dvy[j] * batch.dy[j] + batch.dvz[j] * batch.dz[j];
        let h_mean = 0.5 * (pi.h + hj);
        let c_mean = 0.5 * (pi.cs + batch.csj[j]);
        let rho_mean = 0.5 * (pi.rho + batch.rhoj[j]);
        let mu_all = h_mean * vdotr / (r2 + visc.eta2 * h_mean * h_mean);
        let mu = if vdotr < 0.0 { mu_all } else { 0.0 };
        let visc_term = (-visc.alpha * c_mean * mu + visc.beta * mu * mu) / rho_mean;
        let v_sig = if in_range {
            pi.cs + batch.csj[j] - 3.0 * mu
        } else {
            0.0
        };
        let mj = batch.mj[j];
        let fac = pi.p_over_rho2 + batch.p2j[j] + visc_term;
        let dudt = mj
            * (pi.p_over_rho2 + 0.5 * visc_term)
            * (batch.dvx[j] * gx + batch.dvy[j] * gy + batch.dvz[j] * gz);
        (
            -(gx * (mj * fac)),
            -(gy * (mj * fac)),
            -(gz * (mj * fac)),
            dudt,
            v_sig,
        )
    };

    let chunks = n / FORCE_LANES;
    for c in 0..chunks {
        let base = c * FORCE_LANES;
        for l in 0..FORCE_LANES {
            let (x, y, z, d, v) = body(batch, base + l);
            ax[l] += x;
            ay[l] += y;
            az[l] += z;
            du[l] += d;
            vs[l] = vs[l].max(v);
        }
    }
    for j in chunks * FORCE_LANES..n {
        let (x, y, z, d, v) = body(batch, j);
        ax[0] += x;
        ay[0] += y;
        az[0] += z;
        du[0] += d;
        vs[0] = vs[0].max(v);
    }

    out.acc += Vec3::new(
        (ax[0] + ax[1]) + (ax[2] + ax[3]),
        (ay[0] + ay[1]) + (ay[2] + ay[3]),
        (az[0] + az[1]) + (az[2] + az[3]),
    );
    out.dudt += (du[0] + du[1]) + (du[2] + du[3]);
    out.v_sig_max = out.v_sig_max.max(vs[0].max(vs[1]).max(vs[2].max(vs[3])));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GammaLawEos;
    use crate::kernel::CubicSpline;

    fn make(pos: Vec3, vel: Vec3, rho: f64, u: f64) -> HydroInput {
        let eos = GammaLawEos::default();
        HydroInput {
            pos,
            vel,
            mass: 1.0,
            h: 1.0,
            rho,
            p_over_rho2: eos.p_over_rho2(rho, u),
            cs: eos.sound_speed(u),
        }
    }

    #[test]
    fn pressure_force_is_repulsive_along_separation() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let b = make(Vec3::new(0.8, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &b, &mut out);
        // a sits at smaller x: pressure pushes it toward -x.
        assert!(out.acc.x < 0.0, "acc {:?}", out.acc);
        assert_eq!(out.acc.y, 0.0);
    }

    #[test]
    fn newtons_third_law_momentum_and_energy() {
        let a = make(Vec3::ZERO, Vec3::new(0.3, 0.0, 0.0), 1.5, 2.0);
        let b = make(
            Vec3::new(0.5, 0.4, -0.2),
            Vec3::new(-0.1, 0.2, 0.0),
            0.8,
            1.0,
        );
        let mut fa = HydroAccum::default();
        let mut fb = HydroAccum::default();
        let visc = Viscosity::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut fa);
        pair_force(&CubicSpline, &visc, &b, &a, &mut fb);
        // Momentum: m_a a_a + m_b a_b = 0.
        let net = fa.acc * a.mass + fb.acc * b.mass;
        assert!(net.norm() < 1e-14, "net {net:?}");
        // Energy: m_a du_a + m_b du_b = -d/dt kinetic = -(m a)·v summed.
        let dk = a.mass * fa.acc.dot(a.vel) + b.mass * fb.acc.dot(b.vel);
        let du = a.mass * fa.dudt + b.mass * fb.dudt;
        assert!((dk + du).abs() < 1e-12, "energy leak {}", dk + du);
    }

    #[test]
    fn viscosity_only_for_approaching_pairs() {
        let visc = Viscosity::default();
        // Receding: viscosity off, dudt is pure PdV (negative for expansion).
        let a = make(Vec3::ZERO, Vec3::new(-1.0, 0.0, 0.0), 1.0, 1.0);
        let b = make(Vec3::new(0.7, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut out);
        assert!(out.dudt < 0.0, "expansion must cool: {}", out.dudt);
        let receding_vsig = out.v_sig_max;

        // Approaching: viscosity raises both the force and v_sig.
        let a2 = make(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0, 1.0);
        let b2 = make(
            Vec3::new(0.7, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            1.0,
            1.0,
        );
        let mut out2 = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a2, &b2, &mut out2);
        assert!(out2.dudt > 0.0, "compression must heat: {}", out2.dudt);
        assert!(out2.v_sig_max > receding_vsig);
    }

    #[test]
    fn no_interaction_beyond_support() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let b = make(Vec3::new(2.5, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &b, &mut out);
        assert_eq!(out, HydroAccum::default());
    }

    #[test]
    fn coincident_particles_are_skipped() {
        let a = make(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0);
        let mut out = HydroAccum::default();
        pair_force(&CubicSpline, &Viscosity::default(), &a, &a, &mut out);
        assert_eq!(out, HydroAccum::default());
    }

    #[test]
    fn force_batch_matches_pair_force_loop() {
        // The branchless batched kernel against the scalar reference, over
        // a candidate list that exercises every masked early-out: the
        // target itself (r2 == 0), out-of-support rows, approaching and
        // receding pairs, asymmetric smoothing lengths.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 57;
        let inputs: Vec<HydroInput> = (0..n)
            .map(|_| {
                let eos = GammaLawEos::default();
                let rho = rng.gen_range(0.5..2.0);
                let u = rng.gen_range(0.2..3.0);
                HydroInput {
                    pos: Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    vel: Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ),
                    mass: rng.gen_range(0.5..1.5),
                    h: rng.gen_range(0.4..1.6),
                    rho,
                    p_over_rho2: eos.p_over_rho2(rho, u),
                    cs: eos.sound_speed(u),
                }
            })
            .collect();
        let visc = Viscosity::default();
        let ngb: Vec<u32> = (0..n as u32).collect();
        let mut batch = ForceBatch::default();
        for i in 0..n {
            let mut reference = HydroAccum::default();
            for j in 0..n {
                if j == i {
                    continue;
                }
                pair_force(&CubicSpline, &visc, &inputs[i], &inputs[j], &mut reference);
            }
            batch.stage(&inputs[i], &inputs, &ngb);
            assert_eq!(batch.len(), n);
            let mut batched = HydroAccum::default();
            force_batch(&CubicSpline, &visc, &inputs[i], &mut batch, &mut batched);
            let acc_rel = (batched.acc - reference.acc).norm() / reference.acc.norm().max(1e-12);
            assert!(acc_rel < 1e-12, "acc[{i}] rel {acc_rel}");
            let du_rel = (batched.dudt - reference.dudt).abs() / reference.dudt.abs().max(1e-12);
            assert!(du_rel < 1e-12, "dudt[{i}] rel {du_rel}");
            let vs_rel =
                (batched.v_sig_max - reference.v_sig_max).abs() / reference.v_sig_max.max(1e-12);
            assert!(vs_rel < 1e-12, "v_sig[{i}] rel {vs_rel}");
        }
    }

    #[test]
    fn force_batch_is_deterministic() {
        let a = make(Vec3::ZERO, Vec3::new(0.3, 0.1, -0.2), 1.5, 2.0);
        let sources = [
            a,
            make(
                Vec3::new(0.5, 0.4, -0.2),
                Vec3::new(-0.1, 0.2, 0.0),
                0.8,
                1.0,
            ),
            make(
                Vec3::new(-0.7, 0.2, 0.3),
                Vec3::new(0.4, -0.3, 0.1),
                1.2,
                0.5,
            ),
            make(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0), // out of range
            make(
                Vec3::new(0.1, -0.6, 0.5),
                Vec3::new(0.0, 0.5, -0.5),
                0.9,
                2.5,
            ),
        ];
        let ngb: Vec<u32> = (0..sources.len() as u32).collect();
        let visc = Viscosity::default();
        let mut batch = ForceBatch::default();
        batch.stage(&a, &sources, &ngb);
        let mut first = HydroAccum::default();
        force_batch(&CubicSpline, &visc, &a, &mut batch, &mut first);
        for _ in 0..3 {
            batch.stage(&a, &sources, &ngb);
            let mut again = HydroAccum::default();
            force_batch(&CubicSpline, &visc, &a, &mut batch, &mut again);
            assert_eq!(first.acc.x.to_bits(), again.acc.x.to_bits());
            assert_eq!(first.acc.y.to_bits(), again.acc.y.to_bits());
            assert_eq!(first.acc.z.to_bits(), again.acc.z.to_bits());
            assert_eq!(first.dudt.to_bits(), again.dudt.to_bits());
            assert_eq!(first.v_sig_max.to_bits(), again.v_sig_max.to_bits());
        }
        assert!(first.acc.norm() > 0.0, "batch must have produced a force");
    }

    #[test]
    fn asymmetric_smoothing_lengths_still_conserve() {
        let mut a = make(Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), 2.0, 3.0);
        let mut b = make(Vec3::new(0.9, 0.1, 0.0), Vec3::ZERO, 0.5, 0.7);
        a.h = 0.6;
        b.h = 1.4;
        let visc = Viscosity::default();
        let mut fa = HydroAccum::default();
        let mut fb = HydroAccum::default();
        pair_force(&CubicSpline, &visc, &a, &b, &mut fa);
        pair_force(&CubicSpline, &visc, &b, &a, &mut fb);
        assert!((fa.acc * a.mass + fb.acc * b.mass).norm() < 1e-14);
    }
}
