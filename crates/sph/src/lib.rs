//! # sph — smoothed-particle hydrodynamics
//!
//! The compressible-gas half of the N-body/SPH simulation (paper §1): the
//! interstellar medium is modeled with SPH particles whose distribution is
//! "realized with the distributions smoothed by the kernel radius, which is
//! typically the size of 100 gas SPH particles".
//!
//! Components:
//! * [`kernel`] — the M4 cubic-spline kernel, plus a PPA table-lookup
//!   variant built with [`pikg::PpaTable`] (the paper's §3.5 optimization);
//! * [`eos`] — ideal-gas equation of state and temperature conversion;
//! * [`density`] — density summation with the smoothing-length (kernel
//!   size) iteration of paper §5.2.5, re-filtering one cached candidate
//!   list across the iteration instead of re-walking the tree per trial h;
//! * [`force`] — symmetrized pressure force with Monaghan artificial
//!   viscosity and `du/dt`; the production path is the branchless batched
//!   [`force::force_batch`], with scalar [`force::pair_force`] retained as
//!   the equivalence reference;
//! * [`timestep`] — the Courant–Friedrichs–Lewy condition that drives the
//!   entire paper (§1: the SN-heated gas makes `dt_CFL` collapse);
//! * [`solver`] — a rayon-parallel driver over a neighbor-search tree.

#![forbid(unsafe_code)]

pub mod density;
pub mod eos;
pub mod force;
pub mod kernel;
pub mod solver;
pub mod timestep;

pub use eos::GammaLawEos;
pub use kernel::{CubicSpline, PpaSpline, SphKernel, WendlandC2};
pub use solver::{HydroState, SphScratch, SphSolver};

/// Paper-convention operations per density interaction (Table 4).
pub const DENSITY_OPS_PER_INTERACTION: usize = pikg::kernels::PAPER_DENSITY_OPS;
/// Paper-convention operations per hydro-force interaction (Table 4).
pub const HYDRO_OPS_PER_INTERACTION: usize = pikg::kernels::PAPER_HYDRO_OPS;
