//! Ideal-gas equation of state and temperature bookkeeping.
//!
//! The ISM spans `~10 K` molecular clouds to `~10^7 K` SN bubbles (paper
//! Fig. 1) — six orders of magnitude in temperature — handled here with a
//! gamma-law EOS on specific internal energy.

/// Boltzmann constant over proton mass, in code units (pc, M_sun, Myr):
/// `k_B / m_p = 8.2543e-3 (pc/Myr)^2 / K`.
pub const KB_OVER_MP: f64 = 8.254_3e-3;

/// A gamma-law equation of state `P = (gamma - 1) rho u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaLawEos {
    pub gamma: f64,
    /// Mean molecular weight (1.27 for neutral primordial, 0.6 ionized).
    pub mu: f64,
}

impl Default for GammaLawEos {
    fn default() -> Self {
        GammaLawEos {
            gamma: 5.0 / 3.0,
            mu: 1.27,
        }
    }
}

impl GammaLawEos {
    /// Pressure from density and specific internal energy.
    #[inline]
    pub fn pressure(&self, rho: f64, u: f64) -> f64 {
        (self.gamma - 1.0) * rho * u
    }

    /// Adiabatic sound speed.
    #[inline]
    pub fn sound_speed(&self, u: f64) -> f64 {
        (self.gamma * (self.gamma - 1.0) * u.max(0.0)).sqrt()
    }

    /// Specific internal energy of gas at temperature `T` \[K\].
    #[inline]
    pub fn u_from_temperature(&self, t: f64) -> f64 {
        KB_OVER_MP * t / (self.mu * (self.gamma - 1.0))
    }

    /// Temperature \[K\] of gas with specific internal energy `u`.
    #[inline]
    pub fn temperature_from_u(&self, u: f64) -> f64 {
        u * self.mu * (self.gamma - 1.0) / KB_OVER_MP
    }

    /// `P / rho^2`, the quantity the symmetrized force kernel consumes.
    #[inline]
    pub fn p_over_rho2(&self, rho: f64, u: f64) -> f64 {
        (self.gamma - 1.0) * u / rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_roundtrip() {
        let eos = GammaLawEos::default();
        for &t in &[10.0, 1e4, 1e7] {
            let u = eos.u_from_temperature(t);
            assert!((eos.temperature_from_u(u) - t).abs() / t < 1e-12);
        }
    }

    #[test]
    fn pressure_and_p_over_rho2_consistent() {
        let eos = GammaLawEos::default();
        let (rho, u) = (3.0, 7.0);
        assert!((eos.pressure(rho, u) / (rho * rho) - eos.p_over_rho2(rho, u)).abs() < 1e-14);
    }

    #[test]
    fn sound_speed_of_warm_ism_is_of_order_10_km_s() {
        // T = 1e4 K ionized gas: c_s ~ 15 km/s ~ 15.3 pc/Myr.
        let eos = GammaLawEos {
            gamma: 5.0 / 3.0,
            mu: 0.6,
        };
        let u = eos.u_from_temperature(1e4);
        let c = eos.sound_speed(u); // pc/Myr
        assert!(
            (10.0..25.0).contains(&c),
            "sound speed {c} pc/Myr out of range"
        );
    }

    #[test]
    fn sn_heated_gas_has_1000x_cold_sound_speed() {
        // The paper's timestep collapse: 10^7 K vs 10 K is a 10^3 ratio in c.
        let eos = GammaLawEos::default();
        let c_cold = eos.sound_speed(eos.u_from_temperature(10.0));
        let c_hot = eos.sound_speed(eos.u_from_temperature(1e7));
        let ratio = c_hot / c_cold;
        assert!((900.0..1100.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sound_speed_handles_zero_and_negative_u() {
        let eos = GammaLawEos::default();
        assert_eq!(eos.sound_speed(0.0), 0.0);
        assert_eq!(eos.sound_speed(-1.0), 0.0);
    }
}
