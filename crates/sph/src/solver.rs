//! Rayon-parallel SPH driver over a neighbor-search tree.
//!
//! The per-pass staging buffers (search radii, target indices, j-side
//! hydro inputs) live in a caller-owned [`SphScratch`]: the
//! `density_pass_with`/`force_pass_with` entry points clear — never shrink
//! — the scratch, so a simulation's steady-state hydro evaluation performs
//! no heap allocation in this layer. The scratch-free `density_pass`/
//! `force_pass` wrappers remain for cold paths and tests.
//!
//! # Neighbor-tree reuse lifecycle
//!
//! The scratch also carries a [`SphTreeCache`]: the neighbor tree built by
//! one pass is kept and *reused* by later passes instead of being re-sorted
//! and re-split from scratch, mirroring the gravity tree's cross-substep
//! reuse. The lifecycle over one base step of the block-timestep driver:
//!
//! 1. **Base-step density pass** ([`SphSolver::density_pass_with`]):
//!    [`TreeReuse::Rebuild`] — a full [`fdps::Tree::build_with_h`] from the
//!    current positions. This is the only *mandatory* build per force
//!    evaluation, and anchors the drift-bound reference positions.
//! 2. **Force pass** ([`SphSolver::force_pass_with`] /
//!    [`SphSolver::force_pass_active`]): [`TreeReuse::Refresh`] — positions
//!    are unchanged since the density pass, only the smoothing lengths
//!    converged, so [`fdps::Tree::refresh_with_h`] re-accumulates node
//!    `h_max` (and bounds) on the cached Morton topology in O(N) with zero
//!    heap allocation.
//! 3. **Substep passes** ([`SphSolver::density_pass_active`] /
//!    [`SphSolver::force_pass_active`]): [`TreeReuse::Refresh`] — the
//!    active subset drifted a little; the refreshed tree stays *exact*
//!    (bounding boxes always contain their particles and stored radii are
//!    re-accumulated), it only gradually loses Morton locality. When any
//!    particle drifts beyond [`SphTreeCache::DRIFT_FRACTION`] of the root
//!    cube — or the particle count changes — `Refresh` silently degrades
//!    to a full rebuild.
//!
//! Reuse never changes *which* neighbors a pass finds, but a refreshed and
//! a rebuilt tree group particles into different leaves, so candidate
//! lists arrive in different orders and floating-point sums differ at the
//! last ULP. Results are therefore equivalent to a documented `1e-12`
//! relative tolerance, not bitwise (the integration tests pin this), while
//! *repeating* a pass against the same cache state is exactly
//! deterministic — which is what the snapshot-restart bitwise contract
//! needs, since full rebuilds happen at base-step boundaries where
//! checkpoints are taken.

use crate::density::{compute_density_on_tree, DensityConfig};
use crate::eos::GammaLawEos;
use crate::force::{force_batch, ForceBatch, HydroAccum, HydroInput, Viscosity};
use crate::kernel::{CubicSpline, SphKernel};
use crate::timestep::{dt_accel, dt_cfl};
use fdps::{Tree, Vec3};
use rayon::prelude::*;

/// SoA hydrodynamic state. The first `n_local` entries are this rank's
/// particles; any beyond are ghost copies acting as interaction sources.
#[derive(Debug, Clone, Default)]
pub struct HydroState {
    pub pos: Vec<Vec3>,
    pub vel: Vec<Vec3>,
    pub mass: Vec<f64>,
    /// Specific internal energy.
    pub u: Vec<f64>,
    pub h: Vec<f64>,
    pub rho: Vec<f64>,
    pub acc: Vec<Vec3>,
    pub dudt: Vec<f64>,
    pub cs: Vec<f64>,
    pub v_sig: Vec<f64>,
    pub n_ngb: Vec<u32>,
}

impl HydroState {
    /// Number of particles (including ghosts).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Allocate derived arrays to match the primary ones.
    pub fn resize_derived(&mut self) {
        let n = self.pos.len();
        self.rho.resize(n, 0.0);
        self.acc.resize(n, Vec3::ZERO);
        self.dudt.resize(n, 0.0);
        self.cs.resize(n, 0.0);
        self.v_sig.resize(n, 0.0);
        self.n_ngb.resize(n, 0);
    }

    /// Construct from primary arrays, sizing the derived ones.
    pub fn new(pos: Vec<Vec3>, vel: Vec<Vec3>, mass: Vec<f64>, u: Vec<f64>, h: Vec<f64>) -> Self {
        let mut s = HydroState {
            pos,
            vel,
            mass,
            u,
            h,
            ..Default::default()
        };
        assert_eq!(s.pos.len(), s.vel.len());
        assert_eq!(s.pos.len(), s.mass.len());
        assert_eq!(s.pos.len(), s.u.len());
        assert_eq!(s.pos.len(), s.h.len());
        s.resize_derived();
        s
    }

    /// Kinetic + internal energy over the first `n` particles.
    pub fn thermal_kinetic_energy(&self, n: usize) -> f64 {
        (0..n)
            .map(|i| self.mass[i] * (0.5 * self.vel[i].norm2() + self.u[i]))
            .sum()
    }
}

/// How a pass obtains its neighbor tree (see the module docs' lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeReuse {
    /// Re-sort and re-split from the current positions: base steps, or
    /// whenever the particle set itself changed.
    Rebuild,
    /// Keep the cached Morton topology and only re-accumulate node
    /// moments, bounds and `h_max`. Degrades to [`TreeReuse::Rebuild`]
    /// when no valid cache exists, the particle count changed, or the
    /// drift bound tripped.
    Refresh,
}

/// The cached neighbor tree threaded through [`SphScratch`]: topology from
/// the last full build, re-accumulated in place on refreshes.
#[derive(Debug, Clone, Default)]
pub struct SphTreeCache {
    tree: Option<Tree>,
    /// Positions at the last full build — the drift-bound reference.
    ref_pos: Vec<Vec3>,
    /// Cumulative full builds served through this cache.
    pub rebuilds: u64,
    /// Cumulative moment-only refreshes served through this cache.
    pub refreshes: u64,
}

impl SphTreeCache {
    /// Fraction of the root-cube extent any particle may drift from the
    /// last full build before [`TreeReuse::Refresh`] degrades to a
    /// rebuild. Unlike the gravity MAC — where drift loosens the opening
    /// criterion — a refreshed neighbor tree remains *exact*, so this
    /// bound is purely a performance guard against a degenerate Morton
    /// partition.
    pub const DRIFT_FRACTION: f64 = 0.05;

    /// Cumulative `(refreshes, rebuilds)` served by this cache.
    pub fn counts(&self) -> (u64, u64) {
        (self.refreshes, self.rebuilds)
    }

    /// Obtain a tree over `pos`/`mass` carrying search radii `radii`,
    /// honouring the reuse policy.
    fn obtain(
        &mut self,
        pos: &[Vec3],
        mass: &[f64],
        radii: &[f64],
        n_leaf: usize,
        reuse: TreeReuse,
    ) -> &Tree {
        let refresh = reuse == TreeReuse::Refresh
            && self.ref_pos.len() == pos.len()
            && self.tree.as_ref().is_some_and(|t| {
                t.len() == pos.len() && {
                    let bound = t.cube.max_extent() * Self::DRIFT_FRACTION;
                    let b2 = bound * bound;
                    pos.iter()
                        .zip(&self.ref_pos)
                        .all(|(p, q)| (*p - *q).norm2() <= b2)
                }
            });
        if refresh {
            let t = self.tree.as_mut().expect("cache validated above");
            t.refresh_with_h(pos, mass, Some(radii));
            self.refreshes += 1;
        } else {
            self.ref_pos.clear();
            self.ref_pos.extend_from_slice(pos);
            self.tree = Some(Tree::build_with_h(pos, mass, Some(radii), n_leaf));
            self.rebuilds += 1;
        }
        self.tree.as_ref().expect("tree set above")
    }
}

/// Reusable staging buffers for the SPH passes: cleared in place every
/// pass, capacities stabilize at the high-water mark after warm-up. Also
/// carries the cross-pass [`SphTreeCache`].
#[derive(Debug, Clone, Default)]
pub struct SphScratch {
    /// Per-particle search radii (`support * h`), fed to the tree build.
    radii: Vec<f64>,
    /// Target indices of the density pass.
    targets: Vec<usize>,
    /// Per-particle hydro inputs of the force pass.
    inputs: Vec<HydroInput>,
    /// The cached neighbor tree (see the module docs' reuse lifecycle).
    tree: SphTreeCache,
}

impl SphScratch {
    /// Buffer capacities, for zero-allocation regression tests.
    pub fn capacities(&self) -> [usize; 4] {
        [
            self.radii.capacity(),
            self.targets.capacity(),
            self.inputs.capacity(),
            self.tree.ref_pos.capacity(),
        ]
    }

    /// Cumulative `(refreshes, rebuilds)` of the neighbor-tree cache —
    /// drivers report the delta per force evaluation in their stats.
    /// (Cache *safety* needs no manual invalidation hook: `obtain` falls
    /// back to a rebuild on any particle-count change or drift-bound
    /// trip, and a refreshed tree is exact regardless.)
    pub fn tree_counts(&self) -> (u64, u64) {
        self.tree.counts()
    }
}

/// Interaction statistics of one force pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SphStats {
    pub density_interactions: u64,
    pub force_interactions: u64,
    /// Smoothing-length iterations summed over the pass's targets.
    pub h_iterations: u64,
    /// Tree walks issued by those iterations — `h_walks / h_iterations`
    /// is the benched `h_iter_walk_ratio` (`1.0` before the candidate
    /// cache; `< 1.0` whenever any iteration re-filters a cached list).
    pub h_walks: u64,
}

/// The SPH solver configuration.
pub struct SphSolver<K: SphKernel = CubicSpline> {
    pub kernel: K,
    pub eos: GammaLawEos,
    pub visc: Viscosity,
    pub density_cfg: DensityConfig,
    pub cfl: f64,
}

impl Default for SphSolver<CubicSpline> {
    fn default() -> Self {
        SphSolver {
            kernel: CubicSpline,
            eos: GammaLawEos::default(),
            visc: Viscosity::default(),
            density_cfg: DensityConfig::default(),
            cfl: crate::timestep::DEFAULT_CFL,
        }
    }
}

impl<K: SphKernel> SphSolver<K> {
    /// Kernel-size + density pass ("1st Calc_Kernel_Size_and_Density" in the
    /// paper's phase breakdown): converge `h`, fill `rho`, `cs`, `n_ngb` for
    /// the first `n_local` particles. Ghosts contribute as sources.
    pub fn density_pass(&self, state: &mut HydroState, n_local: usize) -> SphStats {
        self.density_pass_with(state, n_local, &mut SphScratch::default())
    }

    /// [`SphSolver::density_pass`] with caller-owned staging buffers; the
    /// zero-allocation entry point the simulation driver uses every step.
    pub fn density_pass_with(
        &self,
        state: &mut HydroState,
        n_local: usize,
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend(0..n_local);
        self.density_on_staged_targets(state, scratch, TreeReuse::Rebuild)
    }

    /// Converge `h`/`rho` only for the `targets` subset (hydro-local
    /// indices) while the whole state still acts as sources — the
    /// hierarchical-block-timestep entry point: on a fine substep only the
    /// active level bins re-sum their density; everyone else keeps the
    /// converged values from their own last update. Consumes the cached
    /// neighbor-tree topology ([`TreeReuse::Refresh`]).
    pub fn density_pass_active(
        &self,
        state: &mut HydroState,
        targets: &[usize],
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend_from_slice(targets);
        self.density_on_staged_targets(state, scratch, TreeReuse::Refresh)
    }

    /// The shared density core: `scratch.targets` is already staged.
    fn density_on_staged_targets(
        &self,
        state: &mut HydroState,
        scratch: &mut SphScratch,
        reuse: TreeReuse,
    ) -> SphStats {
        state.resize_derived();
        let SphScratch {
            radii,
            targets,
            tree: cache,
            ..
        } = scratch;
        // Stored radii cover the scatter side from the current
        // (pre-iteration) h values; the gather search prunes by node
        // bounding box, so the h-iteration below stays exact even as its
        // query radii outgrow them.
        radii.clear();
        radii.extend(state.h.iter().map(|&hi| self.kernel.support() * hi));
        let tree = cache.obtain(&state.pos, &state.mass, radii, 16, reuse);
        let results = compute_density_on_tree(
            &self.kernel,
            &self.density_cfg,
            tree,
            &state.pos,
            &state.mass,
            &mut state.h,
            targets,
        );
        let mut stats = SphStats::default();
        for (&i, r) in targets.iter().zip(&results) {
            state.rho[i] = r.rho;
            state.n_ngb[i] = r.n_ngb as u32;
            state.cs[i] = self.eos.sound_speed(state.u[i]);
            stats.density_interactions += r.n_ngb as u64;
            stats.h_iterations += r.iterations as u64;
            stats.h_walks += r.walks as u64;
        }
        stats
    }

    /// Hydro force pass ("1st Calc_Force"): fill `acc`, `dudt`, `v_sig` for
    /// the first `n_local` particles. Requires a prior density pass, and
    /// ghosts (if any) must arrive with converged `rho`, `h`, `u`.
    pub fn force_pass(&self, state: &mut HydroState, n_local: usize) -> SphStats {
        self.force_pass_with(state, n_local, &mut SphScratch::default())
    }

    /// [`SphSolver::force_pass`] with caller-owned staging buffers; the
    /// zero-allocation entry point the simulation driver uses every step.
    /// Refreshes the neighbor tree cached by the preceding density pass
    /// (positions unchanged, only `h` converged) instead of rebuilding it.
    pub fn force_pass_with(
        &self,
        state: &mut HydroState,
        n_local: usize,
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend(0..n_local);
        self.force_on_staged_targets(state, scratch, TreeReuse::Refresh)
    }

    /// Hydro forces only for the `targets` subset (hydro-local indices),
    /// with the whole state as sources — the block-timestep companion of
    /// [`SphSolver::density_pass_active`]. Inactive particles keep the
    /// `acc`/`dudt`/`v_sig` from their own last update. Consumes the
    /// cached neighbor-tree topology ([`TreeReuse::Refresh`]).
    pub fn force_pass_active(
        &self,
        state: &mut HydroState,
        targets: &[usize],
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend_from_slice(targets);
        self.force_on_staged_targets(state, scratch, TreeReuse::Refresh)
    }

    /// The shared force core: `scratch.targets` is already staged.
    fn force_on_staged_targets(
        &self,
        state: &mut HydroState,
        scratch: &mut SphScratch,
        reuse: TreeReuse,
    ) -> SphStats {
        state.resize_derived();
        let support = self.kernel.support();
        let SphScratch {
            radii,
            targets,
            inputs,
            tree: cache,
        } = scratch;
        radii.clear();
        radii.extend(state.h.iter().map(|&h| support * h));
        let tree = cache.obtain(&state.pos, &state.mass, radii, 16, reuse);

        inputs.clear();
        inputs.extend((0..state.len()).map(|i| HydroInput {
            pos: state.pos[i],
            vel: state.vel[i],
            mass: state.mass[i],
            h: state.h[i],
            rho: state.rho[i].max(1e-300),
            p_over_rho2: self.eos.p_over_rho2(state.rho[i].max(1e-300), state.u[i]),
            cs: self.eos.sound_speed(state.u[i]),
        }));
        let inputs = &*inputs;

        // Per-worker scratch: the candidate index list plus the SoA batch
        // the vectorized kernel consumes; a target's own index stays in
        // the list (force_batch masks r2 == 0 rows) but is excluded from
        // the interaction count, matching the scalar path's bookkeeping.
        let results: Vec<(HydroAccum, u64)> = targets
            .par_iter()
            .map_init(
                || (Vec::new(), ForceBatch::default()),
                |(ngb, batch): &mut (Vec<u32>, ForceBatch), &i| {
                    ngb.clear();
                    tree.neighbors_within(inputs[i].pos, support * inputs[i].h, ngb);
                    let count = ngb.iter().filter(|&&j| j as usize != i).count() as u64;
                    batch.stage(&inputs[i], inputs, ngb);
                    let mut out = HydroAccum::default();
                    force_batch(&self.kernel, &self.visc, &inputs[i], batch, &mut out);
                    (out, count)
                },
            )
            .collect();

        let mut stats = SphStats::default();
        for (&i, (r, count)) in targets.iter().zip(results) {
            state.acc[i] = r.acc;
            state.dudt[i] = r.dudt;
            state.v_sig[i] = r.v_sig_max;
            stats.force_interactions += count;
        }
        stats
    }

    /// Minimum CFL/acceleration timestep over the first `n_local` particles.
    pub fn min_timestep(&self, state: &HydroState, n_local: usize) -> f64 {
        (0..n_local)
            .map(|i| {
                dt_cfl(self.cfl, state.h[i], state.cs[i], state.v_sig[i]).min(dt_accel(
                    self.cfl,
                    state.h[i],
                    state.acc[i].norm(),
                ))
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relaxed glass-like cube: jittered lattice, uniform u.
    fn uniform_box(n_side: usize, a: f64, u: f64) -> HydroState {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut pos = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pos.push(Vec3::new(
                        i as f64 * a + rng.gen_range(-0.01..0.01) * a,
                        j as f64 * a + rng.gen_range(-0.01..0.01) * a,
                        k as f64 * a + rng.gen_range(-0.01..0.01) * a,
                    ));
                }
            }
        }
        let n = pos.len();
        HydroState::new(
            pos,
            vec![Vec3::ZERO; n],
            vec![1.0; n],
            vec![u; n],
            vec![1.3 * a; n],
        )
    }

    #[test]
    fn uniform_medium_has_negligible_net_force() {
        let mut s = uniform_box(8, 1.0, 1.0);
        let n = s.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        // Interior particles: force should nearly vanish (pressure balance).
        let pressure_scale = {
            let eos = GammaLawEos::default();
            eos.pressure(1.0, 1.0) // ~ rho c^2 scale
        };
        for i in 0..n {
            let p = s.pos[i];
            let interior =
                (2.5..4.5).contains(&p.x) && (2.5..4.5).contains(&p.y) && (2.5..4.5).contains(&p.z);
            if interior {
                assert!(
                    s.acc[i].norm() < 0.5 * pressure_scale,
                    "interior acc {:?} too large",
                    s.acc[i]
                );
            }
        }
    }

    #[test]
    fn force_pass_conserves_momentum_and_energy() {
        let mut s = uniform_box(6, 1.0, 1.0);
        // Kick the center to create converging flow.
        let n = s.len();
        for i in 0..n {
            let d = s.pos[i] - Vec3::splat(2.5);
            s.vel[i] = -d * 0.1;
        }
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        let mut net = Vec3::ZERO;
        let mut de = 0.0;
        for i in 0..n {
            net += s.acc[i] * s.mass[i];
            de += s.mass[i] * (s.acc[i].dot(s.vel[i]) + s.dudt[i]);
        }
        assert!(net.norm() < 1e-10, "net force {net:?}");
        assert!(de.abs() < 1e-9, "energy drift rate {de}");
    }

    #[test]
    fn point_heating_drives_radial_expansion() {
        // Inject energy at the centre; after one force pass the neighbours
        // must accelerate outward — the Sedov launch this paper surrogates.
        let mut s = uniform_box(8, 1.0, 0.01);
        let n = s.len();
        let center_pos = Vec3::splat(3.5);
        let center = (0..n)
            .min_by(|&a, &b| {
                (s.pos[a] - center_pos)
                    .norm2()
                    .total_cmp(&(s.pos[b] - center_pos).norm2())
            })
            .unwrap();
        s.u[center] = 1000.0;
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        let mut outward = 0;
        let mut total = 0;
        for i in 0..n {
            let d = s.pos[i] - s.pos[center];
            let r = d.norm();
            if i != center && r < 2.0 {
                total += 1;
                if s.acc[i].dot(d) > 0.0 {
                    outward += 1;
                }
            }
        }
        assert!(total > 10);
        assert!(
            outward as f64 > 0.9 * total as f64,
            "{outward}/{total} neighbours accelerate outward"
        );
    }

    #[test]
    fn hot_state_shrinks_the_cfl_timestep() {
        let mut cold = uniform_box(6, 1.0, 0.01);
        let mut hot = uniform_box(6, 1.0, 100.0);
        let n = cold.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut cold, n);
        solver.force_pass(&mut cold, n);
        solver.density_pass(&mut hot, n);
        solver.force_pass(&mut hot, n);
        let dt_cold = solver.min_timestep(&cold, n);
        let dt_hot = solver.min_timestep(&hot, n);
        assert!(dt_hot < dt_cold / 10.0, "hot {dt_hot} vs cold {dt_cold}");
    }

    #[test]
    fn active_passes_match_full_passes_on_the_subset() {
        // Converge a full reference state, then re-run density+force on a
        // scattered active subset of a *poisoned* copy: active entries must
        // reproduce the reference, inactive ones must keep their values.
        let mut reference = uniform_box(6, 1.0, 1.0);
        let n = reference.len();
        for i in 0..n {
            let d = reference.pos[i] - Vec3::splat(2.5);
            reference.vel[i] = -d * 0.1;
        }
        let solver = SphSolver::default();
        let mut scratch = SphScratch::default();
        solver.density_pass_with(&mut reference, n, &mut scratch);
        solver.force_pass_with(&mut reference, n, &mut scratch);

        let mut state = reference.clone();
        let targets: Vec<usize> = (0..n).step_by(5).collect();
        let mut is_active = vec![false; n];
        for &t in &targets {
            is_active[t] = true;
        }
        for &i in &targets {
            // Poison only derived values the passes must restore.
            state.rho[i] = -1.0;
            state.acc[i] = Vec3::splat(1e30);
            state.dudt[i] = 1e30;
            state.v_sig[i] = 1e30;
        }
        let d = solver.density_pass_active(&mut state, &targets, &mut scratch);
        let f = solver.force_pass_active(&mut state, &targets, &mut scratch);
        assert!(d.density_interactions > 0 && f.force_interactions > 0);
        for (i, &active) in is_active.iter().enumerate() {
            if active {
                assert!((state.rho[i] - reference.rho[i]).abs() < 1e-12, "rho[{i}]");
                assert!((state.acc[i] - reference.acc[i]).norm() < 1e-12, "acc[{i}]");
                assert!(
                    (state.dudt[i] - reference.dudt[i]).abs() < 1e-12,
                    "dudt[{i}]"
                );
                assert!(state.h[i] > 0.0);
            } else {
                assert_eq!(state.rho[i], reference.rho[i], "inactive rho[{i}] touched");
                assert_eq!(state.acc[i], reference.acc[i], "inactive acc[{i}] touched");
            }
        }
        // The subset pass does proportionally less interaction work.
        let full = solver.force_pass_with(&mut state, n, &mut scratch);
        assert!(
            f.force_interactions * 2 < full.force_interactions,
            "active force pass should prune work: {} vs {}",
            f.force_interactions,
            full.force_interactions
        );
    }

    #[test]
    fn force_pass_refreshes_the_density_pass_tree() {
        // One full density+force evaluation through a shared scratch must
        // cost exactly one tree build: the force pass refreshes the
        // density pass's topology (same positions, converged h).
        let mut s = uniform_box(6, 1.0, 1.0);
        let n = s.len();
        let solver = SphSolver::default();
        let mut scratch = SphScratch::default();
        solver.density_pass_with(&mut s, n, &mut scratch);
        solver.force_pass_with(&mut s, n, &mut scratch);
        assert_eq!(scratch.tree_counts(), (1, 1), "(refreshes, rebuilds)");
        // A second evaluation: density rebuilds, force refreshes again.
        solver.density_pass_with(&mut s, n, &mut scratch);
        solver.force_pass_with(&mut s, n, &mut scratch);
        assert_eq!(scratch.tree_counts(), (2, 2));
    }

    #[test]
    fn refreshed_tree_passes_match_a_rebuilt_tree() {
        // Drift a converged state a little (the substep situation), then
        // run the active passes twice: once consuming the cached topology
        // (Refresh) and once from a cold cache (Rebuild). The physics must
        // agree to the documented 1e-12 relative tolerance — candidate
        // ordering differs between the two topologies, so bitwise equality
        // is not guaranteed, but the neighbor *sets* are identical.
        let mut warm = uniform_box(7, 1.0, 1.0);
        let n = warm.len();
        for i in 0..n {
            let d = warm.pos[i] - Vec3::splat(3.0);
            warm.vel[i] = -d * 0.05;
        }
        let solver = SphSolver::default();
        let mut warm_scratch = SphScratch::default();
        solver.density_pass_with(&mut warm, n, &mut warm_scratch);
        solver.force_pass_with(&mut warm, n, &mut warm_scratch);
        // Substep drift: everyone moves a little; topology kept.
        for i in 0..n {
            warm.pos[i] += warm.vel[i] * 1e-3;
        }
        let mut cold = warm.clone();
        let mut cold_scratch = SphScratch::default();
        let targets: Vec<usize> = (0..n).step_by(3).collect();

        let (r0, _) = warm_scratch.tree_counts();
        solver.density_pass_active(&mut warm, &targets, &mut warm_scratch);
        solver.force_pass_active(&mut warm, &targets, &mut warm_scratch);
        let (r1, _) = warm_scratch.tree_counts();
        assert_eq!(r1 - r0, 2, "both active passes must refresh, not rebuild");

        solver.density_pass_active(&mut cold, &targets, &mut cold_scratch);
        solver.force_pass_active(&mut cold, &targets, &mut cold_scratch);
        // The cold density pass falls back to a rebuild (fresh topology
        // from the *drifted* positions — different from warm's cached
        // pre-drift topology); the cold force pass then refreshes it.
        let (cold_r, cold_b) = cold_scratch.tree_counts();
        assert_eq!((cold_r, cold_b), (1, 1), "(refreshes, rebuilds)");

        for &i in &targets {
            let rho_rel = (warm.rho[i] - cold.rho[i]).abs() / cold.rho[i].abs().max(1e-300);
            assert!(rho_rel < 1e-12, "rho[{i}] rel err {rho_rel}");
            assert_eq!(warm.h[i], cold.h[i], "h[{i}] iteration must agree");
            assert_eq!(warm.n_ngb[i], cold.n_ngb[i], "n_ngb[{i}]");
            let acc_rel =
                (warm.acc[i] - cold.acc[i]).norm() / cold.acc[i].norm().max(1e-300).max(1e-12);
            assert!(acc_rel < 1e-12, "acc[{i}] rel err {acc_rel}");
            let dudt_rel = (warm.dudt[i] - cold.dudt[i]).abs() / cold.dudt[i].abs().max(1e-12);
            assert!(dudt_rel < 1e-12, "dudt[{i}] rel err {dudt_rel}");
        }
    }

    #[test]
    fn full_force_pass_on_refreshed_tree_matches_rebuilt_tree() {
        // The Global-mode usage pattern: every evaluation runs density
        // (rebuild) then force (refresh). The refreshed-tree force results
        // must match a force pass that rebuilds its own tree, within the
        // documented 1e-12 relative tolerance.
        let mut a = uniform_box(6, 1.0, 1.0);
        let n = a.len();
        for i in 0..n {
            let d = a.pos[i] - Vec3::splat(2.5);
            a.vel[i] = -d * 0.1;
        }
        let mut b = a.clone();
        let solver = SphSolver::default();

        let mut shared = SphScratch::default();
        solver.density_pass_with(&mut a, n, &mut shared);
        solver.force_pass_with(&mut a, n, &mut shared); // refresh path

        let mut first = SphScratch::default();
        solver.density_pass_with(&mut b, n, &mut first);
        let mut fresh = SphScratch::default();
        solver.force_pass_with(&mut b, n, &mut fresh); // rebuild path
        assert_eq!(fresh.tree_counts(), (0, 1), "cold force pass rebuilds");

        for i in 0..n {
            let acc_rel = (a.acc[i] - b.acc[i]).norm() / b.acc[i].norm().max(1e-12);
            assert!(acc_rel < 1e-12, "acc[{i}] rel err {acc_rel}");
            let dudt_rel = (a.dudt[i] - b.dudt[i]).abs() / b.dudt[i].abs().max(1e-12);
            assert!(dudt_rel < 1e-12, "dudt[{i}] rel err {dudt_rel}");
            assert_eq!(a.rho[i], b.rho[i], "density paths are identical");
        }
    }

    #[test]
    fn large_drift_degrades_refresh_to_rebuild() {
        let mut s = uniform_box(6, 1.0, 1.0);
        let n = s.len();
        let solver = SphSolver::default();
        let mut scratch = SphScratch::default();
        solver.density_pass_with(&mut s, n, &mut scratch);
        // Teleport one particle across the box: beyond DRIFT_FRACTION.
        s.pos[0] += Vec3::splat(3.0);
        let targets: Vec<usize> = (0..n).collect();
        let (_, b0) = scratch.tree_counts();
        solver.density_pass_active(&mut s, &targets, &mut scratch);
        let (_, b1) = scratch.tree_counts();
        assert_eq!(b1 - b0, 1, "the drift bound must force a rebuild");
    }

    #[test]
    fn ghosts_contribute_as_sources_only() {
        let mut s = uniform_box(6, 1.0, 1.0);
        let n_local = s.len() / 2;
        let n = s.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n_local);
        // Ghost derived values: emulate owner-computed rho/h.
        for i in n_local..n {
            s.rho[i] = 1.0;
        }
        solver.force_pass(&mut s, n_local);
        // Ghost accelerations stay zero (never targeted).
        for i in n_local..n {
            assert_eq!(s.acc[i], Vec3::ZERO);
        }
        // Local particles near the ghost region still received forces.
        assert!(s.acc[..n_local].iter().any(|a| a.norm() > 0.0));
    }
}
