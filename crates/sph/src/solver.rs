//! Rayon-parallel SPH driver over a neighbor-search tree.
//!
//! The per-pass staging buffers (search radii, target indices, j-side
//! hydro inputs) live in a caller-owned [`SphScratch`]: the
//! `density_pass_with`/`force_pass_with` entry points clear — never shrink
//! — the scratch, so a simulation's steady-state hydro evaluation performs
//! no heap allocation in this layer. The scratch-free `density_pass`/
//! `force_pass` wrappers remain for cold paths and tests.

use crate::density::{compute_density_into, DensityConfig};
use crate::eos::GammaLawEos;
use crate::force::{pair_force, HydroAccum, HydroInput, Viscosity};
use crate::kernel::{CubicSpline, SphKernel};
use crate::timestep::{dt_accel, dt_cfl};
use fdps::{Tree, Vec3};
use rayon::prelude::*;

/// SoA hydrodynamic state. The first `n_local` entries are this rank's
/// particles; any beyond are ghost copies acting as interaction sources.
#[derive(Debug, Clone, Default)]
pub struct HydroState {
    pub pos: Vec<Vec3>,
    pub vel: Vec<Vec3>,
    pub mass: Vec<f64>,
    /// Specific internal energy.
    pub u: Vec<f64>,
    pub h: Vec<f64>,
    pub rho: Vec<f64>,
    pub acc: Vec<Vec3>,
    pub dudt: Vec<f64>,
    pub cs: Vec<f64>,
    pub v_sig: Vec<f64>,
    pub n_ngb: Vec<u32>,
}

impl HydroState {
    /// Number of particles (including ghosts).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Allocate derived arrays to match the primary ones.
    pub fn resize_derived(&mut self) {
        let n = self.pos.len();
        self.rho.resize(n, 0.0);
        self.acc.resize(n, Vec3::ZERO);
        self.dudt.resize(n, 0.0);
        self.cs.resize(n, 0.0);
        self.v_sig.resize(n, 0.0);
        self.n_ngb.resize(n, 0);
    }

    /// Construct from primary arrays, sizing the derived ones.
    pub fn new(pos: Vec<Vec3>, vel: Vec<Vec3>, mass: Vec<f64>, u: Vec<f64>, h: Vec<f64>) -> Self {
        let mut s = HydroState {
            pos,
            vel,
            mass,
            u,
            h,
            ..Default::default()
        };
        assert_eq!(s.pos.len(), s.vel.len());
        assert_eq!(s.pos.len(), s.mass.len());
        assert_eq!(s.pos.len(), s.u.len());
        assert_eq!(s.pos.len(), s.h.len());
        s.resize_derived();
        s
    }

    /// Kinetic + internal energy over the first `n` particles.
    pub fn thermal_kinetic_energy(&self, n: usize) -> f64 {
        (0..n)
            .map(|i| self.mass[i] * (0.5 * self.vel[i].norm2() + self.u[i]))
            .sum()
    }
}

/// Reusable staging buffers for the SPH passes: cleared in place every
/// pass, capacities stabilize at the high-water mark after warm-up.
#[derive(Debug, Clone, Default)]
pub struct SphScratch {
    /// Per-particle search radii (`support * h`), fed to the tree build.
    radii: Vec<f64>,
    /// Target indices of the density pass.
    targets: Vec<usize>,
    /// Per-particle hydro inputs of the force pass.
    inputs: Vec<HydroInput>,
}

impl SphScratch {
    /// Buffer capacities, for zero-allocation regression tests.
    pub fn capacities(&self) -> [usize; 3] {
        [
            self.radii.capacity(),
            self.targets.capacity(),
            self.inputs.capacity(),
        ]
    }
}

/// Interaction statistics of one force pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SphStats {
    pub density_interactions: u64,
    pub force_interactions: u64,
    pub h_iterations: u64,
}

/// The SPH solver configuration.
pub struct SphSolver<K: SphKernel = CubicSpline> {
    pub kernel: K,
    pub eos: GammaLawEos,
    pub visc: Viscosity,
    pub density_cfg: DensityConfig,
    pub cfl: f64,
}

impl Default for SphSolver<CubicSpline> {
    fn default() -> Self {
        SphSolver {
            kernel: CubicSpline,
            eos: GammaLawEos::default(),
            visc: Viscosity::default(),
            density_cfg: DensityConfig::default(),
            cfl: crate::timestep::DEFAULT_CFL,
        }
    }
}

impl<K: SphKernel> SphSolver<K> {
    /// Kernel-size + density pass ("1st Calc_Kernel_Size_and_Density" in the
    /// paper's phase breakdown): converge `h`, fill `rho`, `cs`, `n_ngb` for
    /// the first `n_local` particles. Ghosts contribute as sources.
    pub fn density_pass(&self, state: &mut HydroState, n_local: usize) -> SphStats {
        self.density_pass_with(state, n_local, &mut SphScratch::default())
    }

    /// [`SphSolver::density_pass`] with caller-owned staging buffers; the
    /// zero-allocation entry point the simulation driver uses every step.
    pub fn density_pass_with(
        &self,
        state: &mut HydroState,
        n_local: usize,
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend(0..n_local);
        self.density_on_staged_targets(state, scratch)
    }

    /// Converge `h`/`rho` only for the `targets` subset (hydro-local
    /// indices) while the whole state still acts as sources — the
    /// hierarchical-block-timestep entry point: on a fine substep only the
    /// active level bins re-sum their density; everyone else keeps the
    /// converged values from their own last update.
    pub fn density_pass_active(
        &self,
        state: &mut HydroState,
        targets: &[usize],
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend_from_slice(targets);
        self.density_on_staged_targets(state, scratch)
    }

    /// The shared density core: `scratch.targets` is already staged.
    fn density_on_staged_targets(
        &self,
        state: &mut HydroState,
        scratch: &mut SphScratch,
    ) -> SphStats {
        state.resize_derived();
        let results = compute_density_into(
            &self.kernel,
            &self.density_cfg,
            &state.pos,
            &state.mass,
            &mut state.h,
            &scratch.targets,
            &mut scratch.radii,
        );
        let mut stats = SphStats::default();
        for (&i, r) in scratch.targets.iter().zip(&results) {
            state.rho[i] = r.rho;
            state.n_ngb[i] = r.n_ngb as u32;
            state.cs[i] = self.eos.sound_speed(state.u[i]);
            stats.density_interactions += r.n_ngb as u64;
        }
        stats
    }

    /// Hydro force pass ("1st Calc_Force"): fill `acc`, `dudt`, `v_sig` for
    /// the first `n_local` particles. Requires a prior density pass, and
    /// ghosts (if any) must arrive with converged `rho`, `h`, `u`.
    pub fn force_pass(&self, state: &mut HydroState, n_local: usize) -> SphStats {
        self.force_pass_with(state, n_local, &mut SphScratch::default())
    }

    /// [`SphSolver::force_pass`] with caller-owned staging buffers; the
    /// zero-allocation entry point the simulation driver uses every step.
    pub fn force_pass_with(
        &self,
        state: &mut HydroState,
        n_local: usize,
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend(0..n_local);
        self.force_on_staged_targets(state, scratch)
    }

    /// Hydro forces only for the `targets` subset (hydro-local indices),
    /// with the whole state as sources — the block-timestep companion of
    /// [`SphSolver::density_pass_active`]. Inactive particles keep the
    /// `acc`/`dudt`/`v_sig` from their own last update.
    pub fn force_pass_active(
        &self,
        state: &mut HydroState,
        targets: &[usize],
        scratch: &mut SphScratch,
    ) -> SphStats {
        scratch.targets.clear();
        scratch.targets.extend_from_slice(targets);
        self.force_on_staged_targets(state, scratch)
    }

    /// The shared force core: `scratch.targets` is already staged.
    fn force_on_staged_targets(
        &self,
        state: &mut HydroState,
        scratch: &mut SphScratch,
    ) -> SphStats {
        state.resize_derived();
        let support = self.kernel.support();
        let SphScratch {
            radii,
            targets,
            inputs,
        } = scratch;
        radii.clear();
        radii.extend(state.h.iter().map(|&h| support * h));
        let tree = Tree::build_with_h(&state.pos, &state.mass, Some(radii), 16);

        inputs.clear();
        inputs.extend((0..state.len()).map(|i| HydroInput {
            pos: state.pos[i],
            vel: state.vel[i],
            mass: state.mass[i],
            h: state.h[i],
            rho: state.rho[i].max(1e-300),
            p_over_rho2: self.eos.p_over_rho2(state.rho[i].max(1e-300), state.u[i]),
            cs: self.eos.sound_speed(state.u[i]),
        }));
        let inputs = &*inputs;

        let results: Vec<(HydroAccum, u64)> = targets
            .par_iter()
            .map_init(Vec::new, |ngb: &mut Vec<u32>, &i| {
                ngb.clear();
                tree.neighbors_within(inputs[i].pos, support * inputs[i].h, ngb);
                let mut out = HydroAccum::default();
                let mut count = 0u64;
                for &j in ngb.iter() {
                    let j = j as usize;
                    if j == i {
                        continue;
                    }
                    pair_force(&self.kernel, &self.visc, &inputs[i], &inputs[j], &mut out);
                    count += 1;
                }
                (out, count)
            })
            .collect();

        let mut stats = SphStats::default();
        for (&i, (r, count)) in targets.iter().zip(results) {
            state.acc[i] = r.acc;
            state.dudt[i] = r.dudt;
            state.v_sig[i] = r.v_sig_max;
            stats.force_interactions += count;
        }
        stats
    }

    /// Minimum CFL/acceleration timestep over the first `n_local` particles.
    pub fn min_timestep(&self, state: &HydroState, n_local: usize) -> f64 {
        (0..n_local)
            .map(|i| {
                dt_cfl(self.cfl, state.h[i], state.cs[i], state.v_sig[i]).min(dt_accel(
                    self.cfl,
                    state.h[i],
                    state.acc[i].norm(),
                ))
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relaxed glass-like cube: jittered lattice, uniform u.
    fn uniform_box(n_side: usize, a: f64, u: f64) -> HydroState {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut pos = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pos.push(Vec3::new(
                        i as f64 * a + rng.gen_range(-0.01..0.01) * a,
                        j as f64 * a + rng.gen_range(-0.01..0.01) * a,
                        k as f64 * a + rng.gen_range(-0.01..0.01) * a,
                    ));
                }
            }
        }
        let n = pos.len();
        HydroState::new(
            pos,
            vec![Vec3::ZERO; n],
            vec![1.0; n],
            vec![u; n],
            vec![1.3 * a; n],
        )
    }

    #[test]
    fn uniform_medium_has_negligible_net_force() {
        let mut s = uniform_box(8, 1.0, 1.0);
        let n = s.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        // Interior particles: force should nearly vanish (pressure balance).
        let pressure_scale = {
            let eos = GammaLawEos::default();
            eos.pressure(1.0, 1.0) // ~ rho c^2 scale
        };
        for i in 0..n {
            let p = s.pos[i];
            let interior =
                (2.5..4.5).contains(&p.x) && (2.5..4.5).contains(&p.y) && (2.5..4.5).contains(&p.z);
            if interior {
                assert!(
                    s.acc[i].norm() < 0.5 * pressure_scale,
                    "interior acc {:?} too large",
                    s.acc[i]
                );
            }
        }
    }

    #[test]
    fn force_pass_conserves_momentum_and_energy() {
        let mut s = uniform_box(6, 1.0, 1.0);
        // Kick the center to create converging flow.
        let n = s.len();
        for i in 0..n {
            let d = s.pos[i] - Vec3::splat(2.5);
            s.vel[i] = -d * 0.1;
        }
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        let mut net = Vec3::ZERO;
        let mut de = 0.0;
        for i in 0..n {
            net += s.acc[i] * s.mass[i];
            de += s.mass[i] * (s.acc[i].dot(s.vel[i]) + s.dudt[i]);
        }
        assert!(net.norm() < 1e-10, "net force {net:?}");
        assert!(de.abs() < 1e-9, "energy drift rate {de}");
    }

    #[test]
    fn point_heating_drives_radial_expansion() {
        // Inject energy at the centre; after one force pass the neighbours
        // must accelerate outward — the Sedov launch this paper surrogates.
        let mut s = uniform_box(8, 1.0, 0.01);
        let n = s.len();
        let center_pos = Vec3::splat(3.5);
        let center = (0..n)
            .min_by(|&a, &b| {
                (s.pos[a] - center_pos)
                    .norm2()
                    .total_cmp(&(s.pos[b] - center_pos).norm2())
            })
            .unwrap();
        s.u[center] = 1000.0;
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n);
        solver.force_pass(&mut s, n);
        let mut outward = 0;
        let mut total = 0;
        for i in 0..n {
            let d = s.pos[i] - s.pos[center];
            let r = d.norm();
            if i != center && r < 2.0 {
                total += 1;
                if s.acc[i].dot(d) > 0.0 {
                    outward += 1;
                }
            }
        }
        assert!(total > 10);
        assert!(
            outward as f64 > 0.9 * total as f64,
            "{outward}/{total} neighbours accelerate outward"
        );
    }

    #[test]
    fn hot_state_shrinks_the_cfl_timestep() {
        let mut cold = uniform_box(6, 1.0, 0.01);
        let mut hot = uniform_box(6, 1.0, 100.0);
        let n = cold.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut cold, n);
        solver.force_pass(&mut cold, n);
        solver.density_pass(&mut hot, n);
        solver.force_pass(&mut hot, n);
        let dt_cold = solver.min_timestep(&cold, n);
        let dt_hot = solver.min_timestep(&hot, n);
        assert!(dt_hot < dt_cold / 10.0, "hot {dt_hot} vs cold {dt_cold}");
    }

    #[test]
    fn active_passes_match_full_passes_on_the_subset() {
        // Converge a full reference state, then re-run density+force on a
        // scattered active subset of a *poisoned* copy: active entries must
        // reproduce the reference, inactive ones must keep their values.
        let mut reference = uniform_box(6, 1.0, 1.0);
        let n = reference.len();
        for i in 0..n {
            let d = reference.pos[i] - Vec3::splat(2.5);
            reference.vel[i] = -d * 0.1;
        }
        let solver = SphSolver::default();
        let mut scratch = SphScratch::default();
        solver.density_pass_with(&mut reference, n, &mut scratch);
        solver.force_pass_with(&mut reference, n, &mut scratch);

        let mut state = reference.clone();
        let targets: Vec<usize> = (0..n).step_by(5).collect();
        let mut is_active = vec![false; n];
        for &t in &targets {
            is_active[t] = true;
        }
        for &i in &targets {
            // Poison only derived values the passes must restore.
            state.rho[i] = -1.0;
            state.acc[i] = Vec3::splat(1e30);
            state.dudt[i] = 1e30;
            state.v_sig[i] = 1e30;
        }
        let d = solver.density_pass_active(&mut state, &targets, &mut scratch);
        let f = solver.force_pass_active(&mut state, &targets, &mut scratch);
        assert!(d.density_interactions > 0 && f.force_interactions > 0);
        for (i, &active) in is_active.iter().enumerate() {
            if active {
                assert!((state.rho[i] - reference.rho[i]).abs() < 1e-12, "rho[{i}]");
                assert!((state.acc[i] - reference.acc[i]).norm() < 1e-12, "acc[{i}]");
                assert!(
                    (state.dudt[i] - reference.dudt[i]).abs() < 1e-12,
                    "dudt[{i}]"
                );
                assert!(state.h[i] > 0.0);
            } else {
                assert_eq!(state.rho[i], reference.rho[i], "inactive rho[{i}] touched");
                assert_eq!(state.acc[i], reference.acc[i], "inactive acc[{i}] touched");
            }
        }
        // The subset pass does proportionally less interaction work.
        let full = solver.force_pass_with(&mut state, n, &mut scratch);
        assert!(
            f.force_interactions * 2 < full.force_interactions,
            "active force pass should prune work: {} vs {}",
            f.force_interactions,
            full.force_interactions
        );
    }

    #[test]
    fn ghosts_contribute_as_sources_only() {
        let mut s = uniform_box(6, 1.0, 1.0);
        let n_local = s.len() / 2;
        let n = s.len();
        let solver = SphSolver::default();
        solver.density_pass(&mut s, n_local);
        // Ghost derived values: emulate owner-computed rho/h.
        for i in n_local..n {
            s.rho[i] = 1.0;
        }
        solver.force_pass(&mut s, n_local);
        // Ghost accelerations stay zero (never targeted).
        for i in n_local..n {
            assert_eq!(s.acc[i], Vec3::ZERO);
        }
        // Local particles near the ghost region still received forces.
        assert!(s.acc[..n_local].iter().any(|a| a.norm() > 0.0));
    }
}
