//! Chaos tests of the supervised runner: inject deterministic faults
//! (kill-at-step, torn checkpoint writes, stalled heartbeats) into real
//! `asura` child processes and assert the supervisor auto-resumes from the
//! newest valid rotation entry, finishes at the same absolute step, and
//! produces a final checkpoint **bitwise identical** to an uninterrupted
//! run — in both Block and Global timestep modes.

use asura_core::faults::FAULT_KILL_EXIT;
use asura_core::supervise::{IncidentKind, IncidentLog, Outcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_asura");
const STEPS: u64 = 6;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asura-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// All artifacts land in `<out-dir>/<scenario>/`.
fn run_dir(out_dir: &Path) -> PathBuf {
    out_dir.join("spiked_dt")
}

fn base_cmd(out_dir: &Path, timestep: Option<&str>) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(["--scenario", "spiked_dt"])
        .args(["--steps", &STEPS.to_string()])
        .args(["--snapshot-every", "2"])
        .args(["--seed", "123"])
        .arg("--out-dir")
        .arg(out_dir)
        // Never inherit a fault plan from the test runner's environment.
        .env_remove(asura_core::faults::FAULTS_ENV)
        .env_remove(asura_core::faults::ATTEMPT_ENV);
    if let Some(mode) = timestep {
        cmd.args(["--timestep", mode]);
    }
    cmd
}

/// Fault-free reference run; returns the bytes of its final checkpoint.
fn baseline(tag: &str, timestep: Option<&str>) -> Vec<u8> {
    let dir = tmpdir(tag);
    let status = base_cmd(&dir, timestep).status().unwrap();
    assert!(status.success(), "baseline run failed");
    fs::read(run_dir(&dir).join(format!("checkpoint-{STEPS:06}.bin"))).unwrap()
}

fn supervised_cmd(out_dir: &Path, timestep: Option<&str>, faults: &str) -> Command {
    let mut cmd = base_cmd(out_dir, timestep);
    cmd.arg("--supervised")
        .args(["--backoff-ms", "10"])
        .env(asura_core::faults::FAULTS_ENV, faults);
    cmd
}

fn read_log(out_dir: &Path) -> IncidentLog {
    let text = fs::read_to_string(run_dir(out_dir).join("supervisor.json")).unwrap();
    IncidentLog::from_json(&text).unwrap()
}

#[test]
fn kill_at_seeded_random_step_resumes_bitwise_identical() {
    // Both timestep modes, a handful of seeded kill steps each. Killing
    // happens after the step but before that step's cadence commit, so the
    // attempt always loses its newest progress — the most adversarial
    // resume point.
    for (mode_tag, timestep) in [("block", None), ("global", Some("global"))] {
        let reference = baseline(&format!("base-{mode_tag}"), timestep);
        let mut rng = StdRng::seed_from_u64(0xC4A0 + mode_tag.len() as u64);
        for case in 0..3u32 {
            let kill_step = rng.gen_range(1..STEPS + 1);
            let dir = tmpdir(&format!("kill-{mode_tag}-{case}"));
            let status = supervised_cmd(&dir, timestep, &format!("kill@{kill_step}#0"))
                .status()
                .unwrap();
            assert!(
                status.success(),
                "{mode_tag} kill@{kill_step}: supervised run should complete"
            );

            let log = read_log(&dir);
            assert_eq!(log.outcome, Some(Outcome::Completed { attempts: 2 }));
            assert_eq!(
                log.incidents.len(),
                1,
                "{mode_tag} kill@{kill_step}: exactly the injected incident"
            );
            let inc = &log.incidents[0];
            assert_eq!(inc.attempt, 0);
            assert_eq!(
                inc.kind,
                IncidentKind::Crash {
                    exit_code: FAULT_KILL_EXIT
                }
            );
            // Checkpoints land at even steps; the kill fires before the
            // same-step commit, so the resume point is the last even step
            // strictly below the kill step (none before step 2).
            let expect_resume = ((kill_step - 1) / 2 * 2 != 0).then(|| (kill_step - 1) / 2 * 2);
            assert_eq!(
                inc.resumed_from_step, expect_resume,
                "{mode_tag} kill@{kill_step}: wrong resume point"
            );

            let final_bytes =
                fs::read(run_dir(&dir).join(format!("checkpoint-{STEPS:06}.bin"))).unwrap();
            assert_eq!(
                final_bytes, reference,
                "{mode_tag} kill@{kill_step}: final checkpoint differs from uninterrupted run"
            );
        }
    }
}

#[test]
fn torn_checkpoint_plus_kill_falls_back_past_the_torn_entry() {
    // Commit 2 (step 4) is torn mid-write; the kill at step 5 then forces
    // a resume, which must skip the damaged step-4 entry and restart from
    // step 2 — and still converge to the reference final state.
    let reference = baseline("base-torn", None);
    let dir = tmpdir("torn-kill");
    let status = supervised_cmd(&dir, None, "torn@2:64#0,kill@5#0")
        .status()
        .unwrap();
    assert!(status.success());

    let log = read_log(&dir);
    assert_eq!(log.outcome, Some(Outcome::Completed { attempts: 2 }));
    assert_eq!(log.incidents.len(), 1);
    assert_eq!(
        log.incidents[0].resumed_from_step,
        Some(2),
        "resume must fall back past the torn step-4 checkpoint"
    );

    let final_bytes = fs::read(run_dir(&dir).join(format!("checkpoint-{STEPS:06}.bin"))).unwrap();
    assert_eq!(final_bytes, reference);
}

#[test]
fn stalled_heartbeat_is_detected_killed_and_resumed() {
    let reference = baseline("base-stall", None);
    let dir = tmpdir("stall");
    let mut cmd = supervised_cmd(&dir, None, "stall@3#0");
    // The resumed attempt must produce its *first* beat within the
    // timeout; with the suite's tests running 4-wide on a loaded single
    // core (debug codegen), startup alone has been observed to exceed
    // 1500 ms, flagging a healthy child as hung.
    cmd.args(["--heartbeat-timeout-ms", "4000"]);
    let status = cmd.status().unwrap();
    assert!(status.success(), "supervised run should survive the hang");

    let log = read_log(&dir);
    assert_eq!(log.outcome, Some(Outcome::Completed { attempts: 2 }));
    assert_eq!(log.incidents.len(), 1);
    match log.incidents[0].kind {
        IncidentKind::Hang { stale_ms } => {
            assert!(stale_ms >= 4000, "stale for at least the timeout")
        }
        other => panic!("expected a hang incident, got {other:?}"),
    }
    assert_eq!(log.incidents[0].resumed_from_step, Some(2));

    let final_bytes = fs::read(run_dir(&dir).join(format!("checkpoint-{STEPS:06}.bin"))).unwrap();
    assert_eq!(final_bytes, reference);
}

#[test]
fn unrecoverable_fault_budget_exhaustion_gives_up() {
    // Kill on every attempt the budget allows: the supervisor must stop
    // after max-retries, leave a gave_up outcome, and exit non-zero.
    let dir = tmpdir("giveup");
    let mut cmd = supervised_cmd(&dir, None, "kill@2#0,kill@2#1,kill@2#2");
    cmd.args(["--max-retries", "2"]);
    let status = cmd.status().unwrap();
    assert!(!status.success(), "exhausted retries must exit non-zero");

    let log = read_log(&dir);
    assert_eq!(log.outcome, Some(Outcome::GaveUp { attempts: 3 }));
    assert_eq!(log.incidents.len(), 3);
    assert!(log.incidents.iter().all(|i| i.kind
        == IncidentKind::Crash {
            exit_code: FAULT_KILL_EXIT
        }));
}
