//! Property tests of the atomic rotated checkpoint store's recovery
//! contract: damage a committed checkpoint at a **seeded random byte**
//! (truncation or corruption) and `latest_valid()` must fall back to the
//! previous rotation entry — for both codecs (binary and JSON) and both
//! snapshot kinds (shared-memory [`SimSnapshot`], distributed
//! [`DistSnapshot`]). Damage is detected by two independent layers: the
//! manifest's intended length/FNV-1a checksum, and the codec's own
//! magic/version/checksum validation (which is all that's left when the
//! manifest itself is lost).

use asura::scenarios;
use asura_core::ckpt::{CkptFormat, CkptStore};
use asura_core::faults::FaultInjector;
use asura_core::snapshot::{DistPending, DistSnapshot, SimSnapshot};
use asura_core::Simulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asura-ckpt-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two consecutive real checkpoints of the spiked_dt scenario (small and
/// fast, block timesteps, so the snapshot carries a schedule).
fn sim_snapshots(seed: u64) -> (SimSnapshot, SimSnapshot) {
    let scenario = scenarios::find("spiked_dt").unwrap();
    let (cfg, particles) = scenario.build(seed);
    let mut sim = Simulation::new(cfg, particles, seed);
    sim.run(1);
    let first = sim.snapshot();
    sim.run(1);
    (first, sim.snapshot())
}

/// A pair of distributed snapshots synthesized from the same particle
/// state (rank-partitioned), with an in-flight SN region and a block
/// schedule so every snapshot section is exercised.
fn dist_snapshots(seed: u64) -> (DistSnapshot, DistSnapshot) {
    let (a, b) = sim_snapshots(seed);
    let to_dist = |s: &SimSnapshot| {
        let mid = s.particles.len() / 2;
        DistSnapshot {
            step: s.step_count,
            time: s.time,
            rank_particles: vec![s.particles[..mid].to_vec(), s.particles[mid..].to_vec()],
            pending: vec![DistPending {
                due_step: s.step_count + 50,
                center: [1.0, -2.0, 3.0],
                gas: Vec::new(),
            }],
            schedules: s.schedule.iter().cloned().collect(),
            model: s.model.clone(),
        }
    };
    (to_dist(&a), to_dist(&b))
}

enum Damage {
    Truncate,
    FlipByte,
}

/// Commit `older` then `newer` into a rotation, damage the newest entry's
/// file at a seeded random position, and assert the walk falls back to
/// `older`.
#[allow(clippy::too_many_arguments)]
fn damaged_newest_falls_back<T, C>(
    tag: &str,
    format: CkptFormat,
    base: &str,
    older_step: u64,
    pair: (&T, &T),
    commit: C,
    latest: impl Fn(&CkptStore) -> Option<(u64, T)>,
    damage: Damage,
    seed: u64,
) where
    C: Fn(&CkptStore, &T, &mut FaultInjector) -> std::io::Result<PathBuf>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let st = CkptStore::with_base(tmpdir(tag), base, 3);
    let mut inj = FaultInjector::none();
    let (older, newer) = pair;
    commit(&st, older, &mut inj).unwrap();
    let newest_path = commit(&st, newer, &mut inj).unwrap();

    let mut bytes = fs::read(&newest_path).unwrap();
    assert!(bytes.len() > 1);
    match damage {
        Damage::Truncate => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        Damage::FlipByte => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 0x40;
        }
    }
    fs::write(&newest_path, &bytes).unwrap();

    let (step, _) = latest(&st).unwrap_or_else(|| {
        panic!(
            "{tag} seed {seed} ({:?}): no valid entry survived",
            format.ext()
        )
    });
    assert_eq!(
        step,
        older_step,
        "{tag} seed {seed} ({}): damaged newest must fall back to the previous entry",
        format.ext()
    );
}

#[test]
fn sim_checkpoint_damage_falls_back_bin_and_json() {
    for seed in [3u64, 7, 11, 19] {
        let (older, newer) = sim_snapshots(seed);
        for format in [CkptFormat::Bin, CkptFormat::Json] {
            for damage in [Damage::Truncate, Damage::FlipByte] {
                damaged_newest_falls_back(
                    "sim",
                    format,
                    "checkpoint",
                    older.step_count,
                    (&older, &newer),
                    |st, snap: &SimSnapshot, inj| st.commit_sim(snap, format, inj),
                    |st| st.latest_valid_sim().map(|(e, s)| (e.step, s)),
                    damage,
                    seed,
                );
            }
        }
    }
}

#[test]
fn dist_checkpoint_damage_falls_back_bin_and_json() {
    for seed in [5u64, 13] {
        let (older, newer) = dist_snapshots(seed);
        for format in [CkptFormat::Bin, CkptFormat::Json] {
            for damage in [Damage::Truncate, Damage::FlipByte] {
                damaged_newest_falls_back(
                    "dist",
                    format,
                    "dist_checkpoint",
                    older.step,
                    (&older, &newer),
                    |st, snap: &DistSnapshot, inj| st.commit_dist(snap, format, inj),
                    |st| st.latest_valid_dist().map(|(e, s)| (e.step, s)),
                    damage,
                    seed,
                );
            }
        }
    }
}

#[test]
fn fallback_snapshot_is_bitwise_the_committed_one() {
    let (older, newer) = sim_snapshots(42);
    let st = CkptStore::new(tmpdir("bitwise"), 3);
    let mut inj = FaultInjector::none();
    st.commit_sim(&older, CkptFormat::Bin, &mut inj).unwrap();
    let newest = st.commit_sim(&newer, CkptFormat::Bin, &mut inj).unwrap();
    fs::write(&newest, b"garbage").unwrap();
    let (entry, recovered) = st.latest_valid_sim().unwrap();
    assert_eq!(entry.step, older.step_count);
    assert_eq!(
        recovered.to_bytes(),
        older.to_bytes(),
        "recovered snapshot must be byte-identical to what was committed"
    );
}

#[test]
fn lost_manifest_still_recovers_via_codec_validation() {
    // Without a manifest the dir scan cannot check intended lengths or
    // checksums — the codec's internal validation alone must reject the
    // damaged newest entry.
    for format in [CkptFormat::Bin, CkptFormat::Json] {
        let (older, newer) = sim_snapshots(23);
        let st = CkptStore::new(tmpdir("nomanifest"), 3);
        let mut inj = FaultInjector::none();
        st.commit_sim(&older, format, &mut inj).unwrap();
        let newest = st.commit_sim(&newer, format, &mut inj).unwrap();
        // Flip a byte in the payload interior (past any magic header) and
        // drop the manifest entirely.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        fs::remove_file(st.manifest_path()).unwrap();
        let (entry, _) = st.latest_valid_sim().unwrap();
        assert_eq!(
            entry.step,
            older.step_count,
            "({}) codec checksum must reject the flipped byte",
            format.ext()
        );
    }
}

#[test]
fn all_entries_damaged_means_no_valid_checkpoint() {
    let (older, newer) = sim_snapshots(9);
    let st = CkptStore::new(tmpdir("alldead"), 3);
    let mut inj = FaultInjector::none();
    let p1 = st.commit_sim(&older, CkptFormat::Bin, &mut inj).unwrap();
    let p2 = st.commit_sim(&newer, CkptFormat::Bin, &mut inj).unwrap();
    fs::write(&p1, b"x").unwrap();
    fs::write(&p2, b"y").unwrap();
    assert!(st.latest_valid_sim().is_none());
}

#[test]
fn rotation_across_formats_resumes_the_newest_intact_of_either() {
    // A run switched from bin to json mid-way: the rotation holds both
    // extensions; the walk is step-ordered, not extension-ordered.
    let (older, newer) = sim_snapshots(31);
    let st = CkptStore::new(tmpdir("mixed"), 3);
    let mut inj = FaultInjector::none();
    st.commit_sim(&older, CkptFormat::Bin, &mut inj).unwrap();
    st.commit_sim(&newer, CkptFormat::Json, &mut inj).unwrap();
    let (entry, _) = st.latest_valid_sim().unwrap();
    assert_eq!(entry.step, newer.step_count);
    assert!(entry.file.ends_with(".json"));
}
