//! Integration tests of the distributed main/pool driver across mpisim
//! ranks, including the SN pool round trip and routing equivalence.

use asura_core::dist::{run_distributed, DistConfig, PredictorKind};
use asura_core::{Particle, Scheme, SimConfig};
use fdps::exchange::Routing;
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn slab_ic(n_gas: usize, n_dm: usize, n_sn_stars: usize, dt: f64, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    for _ in 0..n_gas {
        out.push(Particle::gas(
            id,
            Vec3::new(
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-12.0..12.0),
            ),
            Vec3::ZERO,
            1.0,
            1.0,
            6.0,
        ));
        id += 1;
    }
    for _ in 0..n_dm {
        out.push(Particle::dm(
            id,
            Vec3::new(
                rng.gen_range(-80.0..80.0),
                rng.gen_range(-80.0..80.0),
                rng.gen_range(-80.0..80.0),
            ),
            Vec3::ZERO,
            10.0,
        ));
        id += 1;
    }
    let life = astro::lifetime::stellar_lifetime_myr(10.0);
    for k in 0..n_sn_stars {
        out.push(Particle::star(
            id,
            Vec3::new(k as f64 * 10.0 - 10.0, 0.0, 0.0),
            Vec3::ZERO,
            10.0,
            dt * 1.5 - life,
        ));
        id += 1;
    }
    out
}

fn base_cfg(steps: usize) -> DistConfig {
    DistConfig {
        grid: (2, 2, 1),
        n_pool: 2,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            pool_latency_steps: 2,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 2.0,
            ..Default::default()
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
        steps,
    }
}

#[test]
fn multiple_sne_round_trip_through_multiple_pools() {
    let dt = 2.0e-3;
    let ic = slab_ic(500, 100, 3, dt, 1);
    let report = run_distributed(&base_cfg(5), &ic);
    assert_eq!(report.sn_events, 3, "all three SNe identified");
    assert_eq!(report.regions_applied, 3, "all three predictions applied");
    assert_eq!(report.final_particles, ic.len() as u64);
}

#[test]
fn particle_count_invariant_under_routing_and_grid() {
    let ic = slab_ic(400, 150, 0, 2.0e-3, 2);
    for routing in [Routing::Flat, Routing::Torus] {
        for grid in [(4, 1, 1), (2, 2, 1), (2, 2, 2)] {
            let cfg = DistConfig {
                grid,
                routing,
                ..base_cfg(2)
            };
            let report = run_distributed(&cfg, &ic);
            assert_eq!(
                report.final_particles,
                ic.len() as u64,
                "grid {grid:?}, routing {routing:?}"
            );
        }
    }
}

#[test]
fn communication_volume_is_recorded_per_main_rank() {
    let ic = slab_ic(300, 100, 0, 2.0e-3, 3);
    let report = run_distributed(&base_cfg(2), &ic);
    assert_eq!(report.bytes_sent.len(), 4);
    assert!(
        report.bytes_sent.iter().all(|&b| b > 0),
        "every main rank communicates: {:?}",
        report.bytes_sent
    );
}

#[test]
fn single_main_rank_degenerate_case_works() {
    let ic = slab_ic(200, 0, 1, 2.0e-3, 4);
    let cfg = DistConfig {
        grid: (1, 1, 1),
        n_pool: 1,
        ..base_cfg(4)
    };
    let report = run_distributed(&cfg, &ic);
    assert_eq!(report.sn_events, 1);
    assert_eq!(report.regions_applied, 1);
}
