//! Integration tests of the distributed main/pool driver across mpisim
//! ranks: the SN pool round trip, routing equivalence, KDK integration
//! order against the shared-memory driver, and block-timestep schedule
//! agreement/energy conservation.

use asura_core::dist::{run_distributed, DistConfig, PredictorKind};
use asura_core::sim::total_energy_of;
use asura_core::{Particle, Scheme, SimConfig, Simulation, TimestepMode};
use fdps::exchange::Routing;
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn slab_ic(n_gas: usize, n_dm: usize, n_sn_stars: usize, dt: f64, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    for _ in 0..n_gas {
        out.push(Particle::gas(
            id,
            Vec3::new(
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-12.0..12.0),
            ),
            Vec3::ZERO,
            1.0,
            1.0,
            6.0,
        ));
        id += 1;
    }
    for _ in 0..n_dm {
        out.push(Particle::dm(
            id,
            Vec3::new(
                rng.gen_range(-80.0..80.0),
                rng.gen_range(-80.0..80.0),
                rng.gen_range(-80.0..80.0),
            ),
            Vec3::ZERO,
            10.0,
        ));
        id += 1;
    }
    let life = astro::lifetime::stellar_lifetime_myr(10.0);
    for k in 0..n_sn_stars {
        out.push(Particle::star(
            id,
            Vec3::new(k as f64 * 10.0 - 10.0, 0.0, 0.0),
            Vec3::ZERO,
            10.0,
            dt * 1.5 - life,
        ));
        id += 1;
    }
    out
}

fn base_cfg(steps: usize) -> DistConfig {
    DistConfig {
        grid: (2, 2, 1),
        n_pool: 2,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            pool_latency_steps: 2,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 2.0,
            ..Default::default()
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
        steps,
    }
}

#[test]
fn multiple_sne_round_trip_through_multiple_pools() {
    let dt = 2.0e-3;
    let ic = slab_ic(500, 100, 3, dt, 1);
    let report = run_distributed(&base_cfg(5), &ic).expect("dist run");
    assert_eq!(report.sn_events, 3, "all three SNe identified");
    assert_eq!(report.regions_applied, 3, "all three predictions applied");
    assert_eq!(report.final_particles, ic.len() as u64);
}

#[test]
fn particle_count_invariant_under_routing_and_grid() {
    let ic = slab_ic(400, 150, 0, 2.0e-3, 2);
    for routing in [Routing::Flat, Routing::Torus] {
        for grid in [(4, 1, 1), (2, 2, 1), (2, 2, 2)] {
            let cfg = DistConfig {
                grid,
                routing,
                ..base_cfg(2)
            };
            let report = run_distributed(&cfg, &ic).expect("dist run");
            assert_eq!(
                report.final_particles,
                ic.len() as u64,
                "grid {grid:?}, routing {routing:?}"
            );
        }
    }
}

#[test]
fn communication_volume_is_recorded_per_main_rank() {
    let ic = slab_ic(300, 100, 0, 2.0e-3, 3);
    let report = run_distributed(&base_cfg(2), &ic).expect("dist run");
    assert_eq!(report.bytes_sent.len(), 4);
    assert!(
        report.bytes_sent.iter().all(|&b| b > 0),
        "every main rank communicates: {:?}",
        report.bytes_sent
    );
}

#[test]
fn distributed_kdk_energy_drift_matches_the_shared_memory_driver() {
    // The dist integrator used to be a first-order kick-drift with an
    // empty FINAL_KICK and locally clamped ghost densities; both bugs blow
    // up the energy budget. With true KDK and owner-imported ghost rho,
    // the distributed run must hold total energy as well as the
    // shared-memory KDK on the identical IC.
    let ic = slab_ic(300, 80, 0, 2.0e-3, 7);
    let steps = 4;
    let cfg = base_cfg(steps);
    let e0 = total_energy_of(&ic, cfg.sim.eps);

    let mut shared = Simulation::new(cfg.sim, ic.clone(), 1);
    shared.run(steps);
    let shared_drift = ((total_energy_of(&shared.particles, cfg.sim.eps) - e0) / e0).abs();

    let report = run_distributed(&cfg, &ic).expect("dist run");
    assert_eq!(report.final_particles, ic.len() as u64);
    let dist_drift = ((total_energy_of(&report.final_state, cfg.sim.eps) - e0) / e0).abs();

    assert!(
        shared_drift < 5e-3,
        "shared-memory KDK drift {shared_drift:.3e}"
    );
    assert!(
        dist_drift < 5e-3,
        "distributed KDK drift {dist_drift:.3e} (shared: {shared_drift:.3e})"
    );
    // Same integration order ⇒ same drift class: the distributed run may
    // differ by domain-cut force ordering, not by a missing half-kick.
    assert!(
        dist_drift < 10.0 * shared_drift + 1e-4,
        "distributed drift {dist_drift:.3e} out of class vs shared {shared_drift:.3e}"
    );
}

#[test]
fn distributed_block_mode_conserves_energy_on_the_spiked_ic() {
    // The spiked-dt stress case across ranks: a blob with one SN-hot
    // particle forces deep levels on one rank while the bulk stays at the
    // base step. The distributed hierarchy (opening half-kicks, fused
    // substep kicks, closing half-kicks) must conserve energy through the
    // whole walk.
    let (sim_cfg, particles) = asura::scenarios::find("spiked_dt")
        .expect("registered")
        .build(1);
    assert!(matches!(sim_cfg.timestep, TimestepMode::Block { .. }));
    let cfg = DistConfig {
        grid: (2, 2, 1),
        n_pool: 1,
        routing: Routing::Flat,
        sim: SimConfig {
            timestep: TimestepMode::Block { max_level: 6 },
            ..sim_cfg
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
        steps: 2,
    };
    let e0 = total_energy_of(&particles, cfg.sim.eps);
    // Reference: the shared-memory driver's hierarchy on the identical IC
    // and horizon. The spiked IC is deliberately violent (the SN-hot
    // particle is CFL-marginal at the level cap), so "conserves" means
    // "the same drift class as the proven shared-memory walk", not an
    // absolute bound.
    let mut shared = Simulation::new(
        SimConfig {
            scheme: Scheme::Conventional,
            ..cfg.sim
        },
        particles.clone(),
        1,
    );
    shared.run(cfg.steps);
    let shared_drift = ((total_energy_of(&shared.particles, cfg.sim.eps) - e0) / e0).abs();

    let report = run_distributed(&cfg, &particles).expect("dist run");
    assert_eq!(report.final_particles, particles.len() as u64);
    assert!(
        report.final_state.iter().all(|p| {
            p.pos.x.is_finite() && p.vel.x.is_finite() && p.u.is_finite() && p.rho.is_finite()
        }),
        "block substepping must stay finite"
    );
    let e1 = total_energy_of(&report.final_state, cfg.sim.eps);
    let drift = ((e1 - e0) / e0).abs();
    assert!(
        drift < 2.0 * shared_drift + 1e-3,
        "distributed block drift {drift:.3e} out of class vs shared-memory {shared_drift:.3e}"
    );
    // The hierarchy actually engaged, on every rank's counter.
    assert!(report
        .rank_stats
        .iter()
        .all(|s| s.substeps == report.rank_stats[0].substeps && s.substeps > report.steps));
}

#[test]
fn distributed_block_schedule_is_identical_on_every_rank_and_snapshotted() {
    let mut ic = slab_ic(250, 0, 0, 2.0e-3, 9);
    ic[17].u = 1.0e8; // hot particle: deep levels on its owner rank
    let cfg = DistConfig {
        grid: (2, 1, 1),
        n_pool: 1,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            timestep: TimestepMode::Block { max_level: 6 },
            dt_global: 2.0e-3,
            pool_latency_steps: 2,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 2.0,
            ..Default::default()
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 2,
        steps: 2,
    };
    let report = run_distributed(&cfg, &ic).expect("dist run");
    // World-consistent walk: every rank ran the same number of substeps,
    // and the hot particle forced more than one per base step.
    let subs: Vec<u64> = report.rank_stats.iter().map(|s| s.substeps).collect();
    assert!(subs.iter().all(|&s| s == subs[0]), "substeps {subs:?}");
    assert!(subs[0] > report.steps, "hierarchy engaged: {subs:?}");
    // The checkpoint carries one schedule per main rank, level arrays in
    // the rank's local particle order.
    let snap = &report.snapshots[0];
    assert_eq!(snap.schedules.len(), cfg.n_main());
    for (rank, sched) in snap.schedules.iter().enumerate() {
        assert_eq!(
            sched.levels.len(),
            snap.rank_particles[rank].len(),
            "rank {rank} schedule covers its particles"
        );
        assert_eq!(sched.dt_max, cfg.sim.dt_global);
    }
    // The deep levels live on the rank that owns the hot particle.
    let deepest = snap
        .schedules
        .iter()
        .map(|s| s.levels.iter().copied().max().unwrap_or(0))
        .max()
        .unwrap();
    assert!(deepest >= 1, "hot particle must sit below the base level");
}

#[test]
fn block_mode_survives_a_rank_with_no_gas() {
    // Gas confined to x < -10 and DM to x > 10 on a 2x1x1 grid: the domain
    // cut leaves one main rank gas-free. The substep walk's ghost
    // exchanges and barrier brackets are collective, so that rank must
    // still enter every region with empty payloads — a data-dependent
    // skip deadlocks the walk.
    let mut rng = StdRng::seed_from_u64(21);
    let mut ic = Vec::new();
    for id in 0..200u64 {
        ic.push(Particle::gas(
            id,
            Vec3::new(
                rng.gen_range(-60.0..-10.0),
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-10.0..10.0),
            ),
            Vec3::ZERO,
            1.0,
            1.0,
            5.0,
        ));
    }
    for id in 200..400u64 {
        ic.push(Particle::dm(
            id,
            Vec3::new(
                rng.gen_range(10.0..60.0),
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-10.0..10.0),
            ),
            Vec3::ZERO,
            10.0,
        ));
    }
    ic[7].u = 1.0e8; // force deep levels on the gas rank
    let cfg = DistConfig {
        grid: (2, 1, 1),
        n_pool: 1,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            timestep: TimestepMode::Block { max_level: 5 },
            dt_global: 2.0e-3,
            pool_latency_steps: 2,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 2.0,
            ..Default::default()
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
        steps: 2,
    };
    let report = run_distributed(&cfg, &ic).expect("dist run");
    assert_eq!(report.final_particles, ic.len() as u64);
    let subs: Vec<u64> = report.rank_stats.iter().map(|s| s.substeps).collect();
    assert!(subs.iter().all(|&s| s == subs[0]), "substeps {subs:?}");
    assert!(subs[0] > report.steps, "hierarchy engaged: {subs:?}");
}

#[test]
fn single_main_rank_degenerate_case_works() {
    let ic = slab_ic(200, 0, 1, 2.0e-3, 4);
    let cfg = DistConfig {
        grid: (1, 1, 1),
        n_pool: 1,
        ..base_cfg(4)
    };
    let report = run_distributed(&cfg, &ic).expect("dist run");
    assert_eq!(report.sn_events, 1);
    assert_eq!(report.regions_applied, 1);
}
