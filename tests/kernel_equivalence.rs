//! Kernel-equivalence property tests: the SIMD compute layer against the
//! retained scalar references, over many seeded random cases (the
//! workspace's proptest stand-in idiom — the failing seed is in every
//! assertion message).
//!
//! Documented tolerances, matching the module docs of each kernel:
//!
//! * gravity monopole, SoA/AVX2 vs AoS f64 — **bitwise** (same lane
//!   structure, same reduction order, exactly-rounded ops only);
//! * gravity mixed precision vs f64 — 1e-5 relative (single-precision
//!   interaction arithmetic is the *point* of that kernel);
//! * SPH batched kernel evaluations vs scalar trait methods — **bitwise**;
//! * SPH `force_batch` vs the `pair_force` loop — 1e-12 relative (the
//!   batch reassociates the neighbour sum across its fixed lanes);
//! * SPH cached-list density vs walk-per-iteration reference — `h`
//!   bitwise, `rho` 1e-12 relative;
//! * U-Net conv GEMM forward vs the scalar loop nest — **exact** f32
//!   (fixed-order im2col GEMM);
//! * and a Block-mode snapshot restart running the whole SIMD stack,
//!   which must stay bitwise identical to the uninterrupted run.

use asura_core::snapshot::SimSnapshot;
use asura_core::{Simulation, TimestepMode};
use fdps::{Tree, Vec3};
use gravity::kernel::{accumulate_f64, accumulate_f64_soa, accumulate_mixed_staged, GravityAccum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sph::density::{compute_density_on_tree, density_one_reference, DensityConfig};
use sph::force::{force_batch, pair_force, ForceBatch, HydroAccum, HydroInput, Viscosity};
use sph::{CubicSpline, SphKernel, WendlandC2};
use unet::conv::Conv3d;
use unet::Tensor;

const CASES: u64 = 24;

fn random_cloud(rng: &mut StdRng, n: usize, limit: f64) -> (Vec<Vec3>, Vec<f64>) {
    let pos = (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-limit..limit),
                rng.gen_range(-limit..limit),
                rng.gen_range(-limit..limit),
            )
        })
        .collect();
    let mass = (0..n).map(|_| rng.gen_range(0.1..3.0)).collect();
    (pos, mass)
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-300)
}

/// The dispatched SoA monopole kernel (AVX2 where the host has it) is
/// bitwise identical to the scalar AoS reference for any cloud, any
/// softening, any list length (including remainder-lane lengths).
#[test]
fn gravity_soa_kernel_is_bitwise_equal_to_aos_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_i = rng.gen_range(1..20);
        let n_j = rng.gen_range(1..300);
        let eps2 = if seed % 3 == 0 { 0.0 } else { 1e-4 };
        let (jpos, jm) = random_cloud(&mut rng, n_j, 5.0);
        let (ipos, _) = random_cloud(&mut rng, n_i, 5.0);
        let mut aos = vec![GravityAccum::default(); n_i];
        accumulate_f64(&ipos, &jpos, &jm, eps2, &mut aos);
        let jx: Vec<f64> = jpos.iter().map(|p| p.x).collect();
        let jy: Vec<f64> = jpos.iter().map(|p| p.y).collect();
        let jz: Vec<f64> = jpos.iter().map(|p| p.z).collect();
        let mut soa = vec![GravityAccum::default(); n_i];
        accumulate_f64_soa(&ipos, &jx, &jy, &jz, &jm, eps2, &mut soa);
        for (i, (a, s)) in aos.iter().zip(&soa).enumerate() {
            assert!(
                a.acc.x.to_bits() == s.acc.x.to_bits()
                    && a.acc.y.to_bits() == s.acc.y.to_bits()
                    && a.acc.z.to_bits() == s.acc.z.to_bits()
                    && a.pot.to_bits() == s.pot.to_bits(),
                "seed {seed}, i {i}: {a:?} vs {s:?}"
            );
        }
    }
}

/// The mixed-precision kernel tracks f64 to single-precision relative
/// accuracy even when the group sits far from the coordinate origin.
#[test]
fn gravity_mixed_kernel_tracks_f64_to_single_precision() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let origin = Vec3::new(
            rng.gen_range(-1e5..1e5),
            rng.gen_range(-1e5..1e5),
            rng.gen_range(-1e5..1e5),
        );
        let n_j = rng.gen_range(32..300);
        let (jrel, jm) = random_cloud(&mut rng, n_j, 2.0);
        let jpos: Vec<Vec3> = jrel.iter().map(|&p| origin + p).collect();
        let (irel, _) = random_cloud(&mut rng, 8, 2.0);
        let ipos: Vec<Vec3> = irel.iter().map(|&p| origin + p).collect();
        let mut exact = vec![GravityAccum::default(); ipos.len()];
        accumulate_f64(&ipos, &jpos, &jm, 1e-4, &mut exact);
        let jx: Vec<f32> = jpos.iter().map(|p| (p.x - origin.x) as f32).collect();
        let jy: Vec<f32> = jpos.iter().map(|p| (p.y - origin.y) as f32).collect();
        let jz: Vec<f32> = jpos.iter().map(|p| (p.z - origin.z) as f32).collect();
        let jmf: Vec<f32> = jm.iter().map(|&m| m as f32).collect();
        let mut mixed = vec![GravityAccum::default(); ipos.len()];
        accumulate_mixed_staged(origin, &ipos, &jx, &jy, &jz, &jmf, 1e-4, &mut mixed);
        for (i, (e, m)) in exact.iter().zip(&mixed).enumerate() {
            let r = (e.acc - m.acc).norm() / e.acc.norm().max(1e-12);
            assert!(r < 1e-5, "seed {seed}, i {i}: acc rel err {r}");
            assert!(rel(e.pot, m.pot) < 1e-5, "seed {seed}, i {i}: pot");
        }
    }
}

/// The batched SPH kernel evaluations are bitwise equal to the scalar
/// trait methods for every kernel shape the solver can be configured with.
#[test]
fn sph_batched_kernel_evaluations_are_bitwise_scalar() {
    let kernels: [&dyn SphKernel; 2] = [&CubicSpline, &WendlandC2];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let n = rng.gen_range(1..97);
        let h = rng.gen_range(0.3..2.5);
        let r: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.5 * h)).collect();
        let hj: Vec<f64> = (0..n).map(|_| rng.gen_range(0.3..2.5)).collect();
        for kernel in kernels {
            let mut w = vec![0.0; n];
            let mut dw = vec![0.0; n];
            let mut dwp = vec![0.0; n];
            kernel.w_batch(&r, h, &mut w);
            kernel.dwdr_batch(&r, h, &mut dw);
            kernel.dwdr_batch_per_h(&r, &hj, &mut dwp);
            for i in 0..n {
                assert_eq!(w[i].to_bits(), kernel.w(r[i], h).to_bits(), "seed {seed}");
                assert_eq!(
                    dw[i].to_bits(),
                    kernel.dwdr(r[i], h).to_bits(),
                    "seed {seed}"
                );
                assert_eq!(
                    dwp[i].to_bits(),
                    kernel.dwdr(r[i], hj[i]).to_bits(),
                    "seed {seed}"
                );
            }
        }
    }
}

/// `force_batch` over a random candidate list (self index included, as the
/// tree walk ships it) agrees with the `pair_force` loop to 1e-12.
#[test]
fn sph_force_batch_matches_pair_force_loop() {
    let kernel = CubicSpline;
    let visc = Viscosity::default();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let n = rng.gen_range(2..80);
        let inputs: Vec<HydroInput> = (0..n)
            .map(|_| {
                let rho = rng.gen_range(0.5..4.0);
                let p = rng.gen_range(0.1..2.0);
                HydroInput {
                    pos: Vec3::new(
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                        rng.gen_range(-2.0..2.0),
                    ),
                    vel: Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ),
                    mass: rng.gen_range(0.2..2.0),
                    h: rng.gen_range(0.6..1.8),
                    rho,
                    p_over_rho2: p / (rho * rho),
                    cs: rng.gen_range(0.5..3.0),
                }
            })
            .collect();
        let ngb: Vec<u32> = (0..n as u32).collect();
        let mut batch = ForceBatch::default();
        for i in 0..n {
            let mut reference = HydroAccum::default();
            for j in 0..n {
                if i != j {
                    pair_force(&kernel, &visc, &inputs[i], &inputs[j], &mut reference);
                }
            }
            let mut batched = HydroAccum::default();
            batch.stage(&inputs[i], &inputs, &ngb);
            force_batch(&kernel, &visc, &inputs[i], &mut batch, &mut batched);
            for (a, b, what) in [
                (reference.acc.x, batched.acc.x, "acc.x"),
                (reference.acc.y, batched.acc.y, "acc.y"),
                (reference.acc.z, batched.acc.z, "acc.z"),
                (reference.dudt, batched.dudt, "dudt"),
                (reference.v_sig_max, batched.v_sig_max, "v_sig"),
            ] {
                assert!(
                    rel(a, b) < 1e-12 || (a - b).abs() < 1e-300,
                    "seed {seed}, i {i}, {what}: {a} vs {b}"
                );
            }
        }
    }
}

/// Cached-list density iteration reproduces the walk-per-iteration
/// reference: identical integer trajectory (`h` to the bit, `n_ngb`,
/// iteration count), `rho` to lane reassociation, never more walks than
/// iterations.
#[test]
fn sph_cached_density_matches_walk_per_iteration_reference() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let (pos, mass) = random_cloud(&mut rng, 600, 4.0);
        let kernel = CubicSpline;
        let cfg = DensityConfig::default();
        let h0 = rng.gen_range(0.4..2.5);
        let radii = vec![kernel.support() * h0; pos.len()];
        let tree = Tree::build_with_h(&pos, &mass, Some(&radii), 16);
        let targets: Vec<usize> = (0..pos.len()).collect();
        let mut h = vec![h0; pos.len()];
        let cached = compute_density_on_tree(&kernel, &cfg, &tree, &pos, &mass, &mut h, &targets);
        let mut scratch = Vec::new();
        for (i, c) in cached.iter().enumerate() {
            let r = density_one_reference(&kernel, &cfg, &tree, &pos, &mass, i, h0, &mut scratch);
            assert_eq!(c.h.to_bits(), r.h.to_bits(), "seed {seed}, i {i}: h");
            assert_eq!(c.n_ngb, r.n_ngb, "seed {seed}, i {i}: n_ngb");
            assert_eq!(c.iterations, r.iterations, "seed {seed}, i {i}: iterations");
            assert!(c.walks <= c.iterations, "seed {seed}, i {i}: walk count");
            assert!(rel(c.rho, r.rho) < 1e-12, "seed {seed}, i {i}: rho");
        }
    }
}

/// The im2col+GEMM conv forward is exactly equal to the scalar loop nest:
/// the GEMM accumulates each output element in the same fixed k-order the
/// reference does, so there is no f32 reassociation to tolerate.
#[test]
fn conv_gemm_forward_is_exact_f32() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let (c_in, c_out) = (rng.gen_range(1..6), rng.gen_range(1..6));
        let k = [1, 3][seed as usize % 2];
        let (d, h, w) = (
            rng.gen_range(2..7),
            rng.gen_range(2..7),
            rng.gen_range(2..7),
        );
        let mut conv = Conv3d::new(c_in, c_out, k, seed + 11);
        conv.bias
            .value
            .iter_mut()
            .for_each(|b| *b = rng.gen_range(-0.5..0.5));
        let x = Tensor::from_vec(
            c_in,
            d,
            h,
            w,
            (0..c_in * d * h * w)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        );
        let fast = conv.forward(&x);
        let slow = conv.forward_reference(&x);
        for (i, (a, b)) in fast.data.iter().zip(&slow.data).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed} ({c_in}->{c_out} k{k} {d}x{h}x{w}) voxel {i}"
            );
        }
    }
}

/// Block-mode snapshot restart through the SIMD force stack (dispatched
/// SoA gravity kernels, batched SPH force, cached density lists): run 2k
/// steps straight vs k + serialized restore + k, and require every
/// particle field bitwise equal. (The surrogate's GEMM conv path is
/// pinned exact by `conv_gemm_forward_is_exact_f32` above and restarts
/// bitwise in `tests/snapshot_restart.rs`; a surrogate scheme here would
/// defeat the test — it exists to *remove* the timestep spike that makes
/// the block hierarchy engage.)
#[test]
fn block_mode_restart_through_simd_stack_is_bitwise() {
    let (cfg, particles) = asura::scenarios::find("spiked_dt")
        .expect("registered scenario")
        .build(1);
    assert!(matches!(cfg.timestep, TimestepMode::Block { .. }));
    let mut full = Simulation::new(cfg, particles.clone(), 11);
    full.run(6);
    assert!(full.stats.substeps > full.stats.steps, "hierarchy engaged");

    let mut first = Simulation::new(cfg, particles, 11);
    first.run(3);
    let snap = SimSnapshot::from_bytes(&first.snapshot().to_bytes()).expect("roundtrip");
    let mut resumed = Simulation::restore(&snap);
    resumed.run(3);

    assert_eq!(full.time.to_bits(), resumed.time.to_bits());
    assert_eq!(full.stats, resumed.stats);
    for (a, b) in full.particles.iter().zip(&resumed.particles) {
        assert_eq!(a, b, "particle {} diverged after restart", a.id);
    }
}
