//! Integration tests of the full surrogate pipeline: training-data
//! generation, U-Net training, and the particle → voxel → net → particle
//! round trip, plus scheme-level ablation.

use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate::training::{make_dataset, TrainingSetup};
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

#[test]
fn training_improves_prediction_of_held_out_sample() {
    let mut rng = StdRng::seed_from_u64(1);
    let setup = TrainingSetup {
        grid_n: 8,
        ..Default::default()
    };
    let train = make_dataset(&mut rng, &setup, 3);
    let held_out = make_dataset(&mut rng, &setup, 1);

    let mut model = SurrogateModel::new(SurrogateConfig {
        grid_n: 8,
        side: 60.0,
        base_features: 2,
        seed: 2,
    });
    let before = unet::mse_loss(&model.infer(&held_out[0].input), &held_out[0].target).0;
    model.train(&train, 30, 1e-2);
    let after = unet::mse_loss(&model.infer(&held_out[0].input), &held_out[0].target).0;
    assert!(
        after < before,
        "held-out loss should improve: {before} -> {after}"
    );
}

#[test]
fn pipeline_preserves_mass_count_and_ids_for_any_region() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = SurrogateModel::new(SurrogateConfig {
        grid_n: 8,
        side: 60.0,
        base_features: 2,
        seed: 4,
    });
    for n in [1usize, 10, 333] {
        let region: Vec<GasParticle> = (0..n)
            .map(|i| GasParticle {
                pos: Vec3::new(
                    rng.gen_range(-29.0..29.0),
                    rng.gen_range(-29.0..29.0),
                    rng.gen_range(-29.0..29.0),
                ),
                vel: Vec3::new(rng.gen_range(-3.0..3.0), 0.0, 0.0),
                mass: rng.gen_range(0.5..2.0),
                temp: rng.gen_range(50.0..200.0),
                h: 3.0,
                id: 1000 + i as u64,
            })
            .collect();
        let out = model.predict_particles(&mut rng, Vec3::ZERO, &region);
        assert_eq!(out.len(), n);
        let m_in: f64 = region.iter().map(|p| p.mass).sum();
        let m_out: f64 = out.iter().map(|p| p.mass).sum();
        assert!((m_out / m_in - 1.0).abs() < 1e-9, "n={n}");
        assert!(out.iter().zip(&region).all(|(a, b)| a.id == b.id));
    }
}

#[test]
fn surrogate_scheme_keeps_fixed_dt_while_conventional_shrinks() {
    // The paper's headline ablation, end to end on the same IC.
    let mut rng = StdRng::seed_from_u64(5);
    let dt = 2.0e-3;
    let mut particles: Vec<Particle> = (0..800)
        .map(|i| {
            Particle::gas(
                i as u64,
                Vec3::new(
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-4.0..4.0),
                ),
                Vec3::ZERO,
                1.0,
                0.05,
                0.8,
            )
        })
        .collect();
    let life = astro::lifetime::stellar_lifetime_myr(12.0);
    particles.push(Particle::star(
        900,
        Vec3::ZERO,
        Vec3::ZERO,
        12.0,
        dt * 1.5 - life,
    ));

    let mk = |scheme| SimConfig {
        scheme,
        dt_global: dt,
        pool_latency_steps: 3,
        cooling: false,
        star_formation: false,
        eps: 0.5,
        n_ngb: 16,
        dt_min: 1e-6,
        ..Default::default()
    };
    let mut surrogate = Simulation::new(mk(Scheme::Surrogate), particles.clone(), 6);
    let mut conventional = Simulation::new(mk(Scheme::Conventional), particles, 6);
    surrogate.run(6);
    conventional.run(6);

    assert_eq!(surrogate.stats.sn_events, 1);
    assert_eq!(conventional.stats.sn_events, 1);
    assert_eq!(
        surrogate.stats.dt_min_seen, dt,
        "surrogate scheme must never shrink the global step"
    );
    assert!(
        conventional.stats.dt_min_seen < dt / 2.0,
        "conventional CFL must shrink: {}",
        conventional.stats.dt_min_seen
    );
    // Same physical time needs more steps conventionally.
    assert!(conventional.time < surrogate.time);
}

#[test]
fn model_serialization_preserves_predictions() {
    let model = SurrogateModel::new(SurrogateConfig {
        grid_n: 8,
        side: 60.0,
        base_features: 2,
        seed: 9,
    });
    let json = model.to_json();
    let restored = SurrogateModel::from_json(&json).expect("roundtrip");
    assert_eq!(restored.config.grid_n, 8);
    assert_eq!(restored.config.seed, 9);
    let x = unet::Tensor::zeros(8, 8, 8, 8);
    assert_eq!(model.infer(&x).data, restored.infer(&x).data);
}
