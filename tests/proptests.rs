//! Property-based tests over the core data structures and invariants,
//! spanning crates (proptest).

use fdps::domain::DomainDecomposition;
use fdps::walk::InteractionList;
use fdps::{BBox, Tree, Vec3};
use proptest::prelude::*;

fn vec3_strategy(limit: f64) -> impl Strategy<Value = Vec3> {
    (
        -limit..limit,
        prop::num::f64::NORMAL.prop_map(move |v| (v % limit).abs() - limit / 2.0),
        -limit..limit,
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every particle lands in exactly one leaf, for any cloud.
    #[test]
    fn tree_partitions_any_cloud(
        pts in prop::collection::vec(vec3_strategy(100.0), 1..200),
        n_leaf in 1usize..16,
    ) {
        let mass = vec![1.0; pts.len()];
        let tree = Tree::build(&pts, &mass, n_leaf);
        let mut seen = vec![0u8; pts.len()];
        for node in &tree.nodes {
            if node.is_leaf() {
                for &i in tree.leaf_particles(node) {
                    seen[i as usize] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        prop_assert!((tree.root().mass - pts.len() as f64).abs() < 1e-9);
    }

    /// The MAC walk never loses mass: EP + SP masses always sum to total.
    #[test]
    fn interaction_lists_conserve_mass(
        pts in prop::collection::vec(vec3_strategy(50.0), 2..150),
        theta in 0.0f64..1.2,
    ) {
        let mass = vec![2.0; pts.len()];
        let total = 2.0 * pts.len() as f64;
        let tree = Tree::build(&pts, &mass, 8);
        let target = BBox::of_points(&pts[..1]);
        let mut list = InteractionList::default();
        tree.walk_mac(&target, theta, &mut list);
        let m: f64 = list.ep.iter().map(|&j| mass[j as usize]).sum::<f64>()
            + list.sp.iter().map(|s| s.mass).sum::<f64>();
        prop_assert!((m - total).abs() < 1e-9 * total);
    }

    /// Neighbor search returns a superset of the exact neighbours.
    #[test]
    fn neighbor_search_is_conservative(
        pts in prop::collection::vec(vec3_strategy(20.0), 1..120),
        r in 0.1f64..10.0,
    ) {
        let mass = vec![1.0; pts.len()];
        let tree = Tree::build(&pts, &mass, 4);
        let q = pts[0];
        let mut found = Vec::new();
        tree.neighbors_within(q, r, &mut found);
        for (i, p) in pts.iter().enumerate() {
            if (*p - q).norm() <= r {
                prop_assert!(
                    found.contains(&(i as u32)),
                    "missed neighbour {} at distance {}",
                    i,
                    (*p - q).norm()
                );
            }
        }
    }

    /// Domain ownership is total and consistent with the clipped boxes.
    #[test]
    fn domain_ownership_is_total(
        pts in prop::collection::vec(vec3_strategy(80.0), 8..300),
        nx in 1usize..4,
        ny in 1usize..3,
        nz in 1usize..3,
    ) {
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((nx, ny, nz), &mut pts.clone(), global);
        for &p in &pts {
            let owner = dd.owner_of(p);
            prop_assert!(owner < dd.len());
            prop_assert!(dd.domain_box(owner).inflated(1e-9).contains(p));
        }
    }

    /// PPA tables evaluate within their reported error bound on-domain.
    #[test]
    fn ppa_error_bound_holds(
        sections in 2usize..24,
        degree in 1usize..5,
        scale in 0.5f64..4.0,
    ) {
        let f = move |x: f64| (scale * x).sin() + x * x;
        let table = pikg::PpaTable::fit(f, 0.0, 2.0, sections, degree);
        let bound = table.max_error() * 1.5 + 1e-12;
        for i in 0..100 {
            let x = 2.0 * i as f64 / 99.0;
            prop_assert!((table.eval(x) - f(x)).abs() <= bound);
        }
    }

    /// The IMF sampler never leaves its mass range and its CDF is exact at
    /// the edges.
    #[test]
    fn imf_samples_stay_in_range(seed in 0u64..1000) {
        use rand::SeedableRng;
        let imf = astro::KroupaImf::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (lo, hi) = imf.mass_range();
        for _ in 0..100 {
            let m = imf.sample(&mut rng);
            prop_assert!((lo..=hi).contains(&m));
        }
    }

    /// Collectives agree with their serial definitions for any world size.
    #[test]
    fn allreduce_matches_serial_sum(
        values in prop::collection::vec(-1e6f64..1e6, 2..12),
    ) {
        use mpisim::{ReduceOp, World};
        let p = values.len();
        let expect: f64 = values.iter().sum();
        let values = std::sync::Arc::new(values);
        let out = World::new(p).run(|c| {
            c.allreduce_f64(values[c.rank()], ReduceOp::Sum)
        });
        for got in out {
            prop_assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    /// Encode/decode of the surrogate's 8-channel layout round-trips any
    /// positive fields to f32 accuracy.
    #[test]
    fn surrogate_encoding_roundtrips(
        rho in 1e-6f64..1e4,
        temp in 10.0f64..1e8,
        vx in -1e3f64..1e3,
    ) {
        use surrogate::{encode_fields, decode_fields, VoxelFields, VoxelGrid};
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 4);
        let mut f = VoxelFields::zeros(grid);
        for i in 0..64 {
            f.density[i] = rho;
            f.temperature[i] = temp;
            f.vel[0][i] = vx;
        }
        let back = decode_fields(&encode_fields(&f), grid);
        prop_assert!((back.density[0] / rho - 1.0).abs() < 1e-4);
        prop_assert!((back.temperature[0] / temp - 1.0).abs() < 1e-4);
        prop_assert!((back.vel[0][0] - vx).abs() < 1e-3 * vx.abs().max(1.0));
    }

    /// Block-timestep quantization never exceeds the wanted step and the
    /// activity schedule performs exactly the promised updates.
    #[test]
    fn block_schedule_bookkeeping_is_exact(
        dts in prop::collection::vec(1e-4f64..1.0, 1..40),
    ) {
        use asura_core::blocksteps::BlockSchedule;
        let s = BlockSchedule::assign(1.0, &dts, 24);
        let mut updates = vec![0u64; dts.len()];
        for k in 0..s.substeps_per_base_step() {
            for i in s.active_at(k) {
                updates[i] += 1;
            }
        }
        let total: u64 = updates.iter().sum();
        prop_assert_eq!(total, s.updates_per_base_step());
        for (i, (&l, &want)) in s.levels.iter().zip(&dts).enumerate() {
            let dt_assigned = 1.0 / (1u64 << l) as f64;
            prop_assert!(dt_assigned <= want + 1e-12 || l == 24, "particle {i}");
            prop_assert_eq!(updates[i], 1u64 << l);
        }
    }

    /// Voxelization conserves mass for arbitrary particle sets inside the
    /// cube.
    #[test]
    fn voxelization_conserves_interior_mass(
        offsets in prop::collection::vec((-25.0f64..25.0, -25.0f64..25.0, -25.0f64..25.0, 0.1f64..5.0), 1..60),
    ) {
        use surrogate::{particles_to_grid, GasParticle, VoxelGrid};
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 8);
        let parts: Vec<GasParticle> = offsets
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z, m))| GasParticle {
                pos: Vec3::new(x, y, z),
                vel: Vec3::ZERO,
                mass: m,
                temp: 100.0,
                h: 2.0,
                id: i as u64,
            })
            .collect();
        let fields = particles_to_grid(grid, &parts);
        let m_in: f64 = parts.iter().map(|p| p.mass).sum();
        prop_assert!((fields.total_mass() / m_in - 1.0).abs() < 1e-6);
    }
}
