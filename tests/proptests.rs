//! Property-based tests over the core data structures and invariants,
//! spanning crates. Each property is exercised over many seeded random
//! cases (a lightweight stand-in for the proptest crate, which is not
//! available in this offline build environment); the failing seed is
//! reported on assertion failure so cases reproduce deterministically.

use fdps::domain::DomainDecomposition;
use fdps::walk::InteractionList;
use fdps::{BBox, Tree, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_cloud(rng: &mut StdRng, n: usize, limit: f64) -> Vec<Vec3> {
    (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-limit..limit),
                rng.gen_range(-limit..limit),
                rng.gen_range(-limit..limit),
            )
        })
        .collect()
}

/// Every particle lands in exactly one leaf, for any cloud.
#[test]
fn tree_partitions_any_cloud() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..200usize);
        let n_leaf = rng.gen_range(1..16usize);
        let pts = random_cloud(&mut rng, n, 100.0);
        let mass = vec![1.0; pts.len()];
        let tree = Tree::build(&pts, &mass, n_leaf);
        let mut seen = vec![0u8; pts.len()];
        for node in &tree.nodes {
            if node.is_leaf() {
                for &i in tree.leaf_particles(node) {
                    seen[i as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "seed {seed}");
        assert!(
            (tree.root().mass - pts.len() as f64).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

/// The MAC walk never loses mass: EP + SP masses always sum to total.
#[test]
fn interaction_lists_conserve_mass() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..150usize);
        let theta = rng.gen_range(0.0..1.2);
        let pts = random_cloud(&mut rng, n, 50.0);
        let mass = vec![2.0; pts.len()];
        let total = 2.0 * pts.len() as f64;
        let tree = Tree::build(&pts, &mass, 8);
        let target = BBox::of_points(&pts[..1]);
        let mut list = InteractionList::default();
        tree.walk_mac(&target, theta, &mut list);
        let m: f64 = list.ep.iter().map(|&j| mass[j as usize]).sum::<f64>()
            + list.sp.iter().map(|s| s.mass).sum::<f64>();
        assert!((m - total).abs() < 1e-9 * total, "seed {seed}");
    }
}

/// Neighbor search returns a superset of the exact neighbours.
#[test]
fn neighbor_search_is_conservative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..120usize);
        let r = rng.gen_range(0.1..10.0);
        let pts = random_cloud(&mut rng, n, 20.0);
        let mass = vec![1.0; pts.len()];
        let tree = Tree::build(&pts, &mass, 4);
        let q = pts[0];
        let mut found = Vec::new();
        tree.neighbors_within(q, r, &mut found);
        for (i, p) in pts.iter().enumerate() {
            if (*p - q).norm() <= r {
                assert!(
                    found.contains(&(i as u32)),
                    "seed {seed}: missed neighbour {} at distance {}",
                    i,
                    (*p - q).norm()
                );
            }
        }
    }
}

/// Domain ownership is total and consistent with the clipped boxes.
#[test]
fn domain_ownership_is_total() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(8..300usize);
        let nx = rng.gen_range(1..4usize);
        let ny = rng.gen_range(1..3usize);
        let nz = rng.gen_range(1..3usize);
        let pts = random_cloud(&mut rng, n, 80.0);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((nx, ny, nz), &mut pts.clone(), global);
        for &p in &pts {
            let owner = dd.owner_of(p);
            assert!(owner < dd.len(), "seed {seed}");
            assert!(
                dd.domain_box(owner).inflated(1e-9).contains(p),
                "seed {seed}"
            );
        }
    }
}

/// PPA tables evaluate within their reported error bound on-domain.
#[test]
fn ppa_error_bound_holds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let sections = rng.gen_range(2..24usize);
        let degree = rng.gen_range(1..5usize);
        let scale: f64 = rng.gen_range(0.5..4.0);
        let f = move |x: f64| (scale * x).sin() + x * x;
        let table = pikg::PpaTable::fit(f, 0.0, 2.0, sections, degree);
        let bound = table.max_error() * 1.5 + 1e-12;
        for i in 0..100 {
            let x = 2.0 * i as f64 / 99.0;
            assert!(
                (table.eval(x) - f(x)).abs() <= bound,
                "seed {seed} at x={x}"
            );
        }
    }
}

/// The IMF sampler never leaves its mass range.
#[test]
fn imf_samples_stay_in_range() {
    for seed in 0..1000u64 {
        let imf = astro::KroupaImf::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = imf.mass_range();
        for _ in 0..100 {
            let m = imf.sample(&mut rng);
            assert!((lo..=hi).contains(&m), "seed {seed}: m={m}");
        }
    }
}

/// Collectives agree with their serial definitions for any world size.
#[test]
fn allreduce_matches_serial_sum() {
    use mpisim::{ReduceOp, World};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rng.gen_range(2..12usize);
        let values: Vec<f64> = (0..p).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let expect: f64 = values.iter().sum();
        let values = std::sync::Arc::new(values);
        let out = World::new(p).run(|c| c.allreduce_f64(values[c.rank()], ReduceOp::Sum));
        for got in out {
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "seed {seed}"
            );
        }
    }
}

/// Encode/decode of the surrogate's 8-channel layout round-trips any
/// positive fields to f32 accuracy.
#[test]
fn surrogate_encoding_roundtrips() {
    use surrogate::{decode_fields, encode_fields, VoxelFields, VoxelGrid};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rho = 10f64.powf(rng.gen_range(-6.0..4.0));
        let temp = 10f64.powf(rng.gen_range(1.0..8.0));
        let vx = rng.gen_range(-1e3..1e3);
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 4);
        let mut f = VoxelFields::zeros(grid);
        for i in 0..64 {
            f.density[i] = rho;
            f.temperature[i] = temp;
            f.vel[0][i] = vx;
        }
        let back = decode_fields(&encode_fields(&f), grid);
        assert!((back.density[0] / rho - 1.0).abs() < 1e-4, "seed {seed}");
        assert!(
            (back.temperature[0] / temp - 1.0).abs() < 1e-4,
            "seed {seed}"
        );
        assert!(
            (back.vel[0][0] - vx).abs() < 1e-3 * vx.abs().max(1.0),
            "seed {seed}"
        );
    }
}

/// Block-timestep quantization never exceeds the wanted step and the
/// activity schedule performs exactly the promised updates.
#[test]
fn block_schedule_bookkeeping_is_exact() {
    use asura_core::blocksteps::BlockSchedule;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..40usize);
        let dts: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(rng.gen_range(-4.0..0.0)))
            .collect();
        let s = BlockSchedule::assign(1.0, &dts, 24);
        let mut updates = vec![0u64; dts.len()];
        for k in 0..s.substeps_per_base_step() {
            for i in s.active_at(k) {
                updates[i] += 1;
            }
        }
        let total: u64 = updates.iter().sum();
        assert_eq!(total, s.updates_per_base_step(), "seed {seed}");
        for (i, (&l, &want)) in s.levels.iter().zip(&dts).enumerate() {
            let dt_assigned = 1.0 / (1u64 << l) as f64;
            assert!(
                dt_assigned <= want + 1e-12 || l == 24,
                "seed {seed} particle {i}"
            );
            assert_eq!(updates[i], 1u64 << l, "seed {seed} particle {i}");
        }
    }
}

/// Voxelization conserves mass for arbitrary particle sets inside the cube.
#[test]
fn voxelization_conserves_interior_mass() {
    use surrogate::{particles_to_grid, GasParticle, VoxelGrid};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..60usize);
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 8);
        let parts: Vec<GasParticle> = (0..n)
            .map(|i| GasParticle {
                pos: Vec3::new(
                    rng.gen_range(-25.0..25.0),
                    rng.gen_range(-25.0..25.0),
                    rng.gen_range(-25.0..25.0),
                ),
                vel: Vec3::ZERO,
                mass: rng.gen_range(0.1..5.0),
                temp: 100.0,
                h: 2.0,
                id: i as u64,
            })
            .collect();
        let fields = particles_to_grid(grid, &parts);
        let m_in: f64 = parts.iter().map(|p| p.mass).sum();
        assert!(
            (fields.total_mass() / m_in - 1.0).abs() < 1e-6,
            "seed {seed}"
        );
    }
}
