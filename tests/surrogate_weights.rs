//! Trained-weights robustness, mirroring `tests/ckpt_faults.rs` for the
//! model documents that now travel with runs: the weights JSON
//! round-trips exactly, corruption is a typed rejection (never a panic)
//! at every layer it can enter — [`SurrogateModel::from_json`], the
//! [`UNetPredictor::from_weights`] loader, [`PredictorKind::resolve`]
//! ([`DistError::BadWeights`]), and the CLI, where a bad `--predictor`
//! file must exit 2 (the supervisor's permanent code) rather than be
//! retried.

use asura_core::dist::{DistError, PredictorKind};
use asura_core::pool::UNetPredictor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::Command;
use surrogate::{SurrogateConfig, SurrogateModel};
use unet::Tensor;

const BIN: &str = env!("CARGO_BIN_EXE_asura");

/// A small valid weights document (untrained is fine — validity is about
/// the envelope + checksum, not the training).
fn weights_doc() -> String {
    SurrogateModel::new(SurrogateConfig {
        grid_n: 8,
        side: 60.0,
        base_features: 2,
        seed: 9,
    })
    .to_json()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asura-weights-{tag}-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn weights_document_roundtrips_exactly() {
    let doc = weights_doc();
    let back = SurrogateModel::from_json(&doc).expect("valid document loads");
    assert_eq!(back.to_json(), doc, "weights JSON must round-trip bitwise");
}

#[test]
fn truncated_weights_are_rejected_not_panics() {
    let doc = weights_doc();
    // Sweep cut points across the whole document (ckpt_faults style: a
    // deterministic spread, not every byte — the doc is ~100 KB).
    for i in 0..97 {
        let cut = (doc.len() * i) / 97;
        let result = std::panic::catch_unwind(|| SurrogateModel::from_json(&doc[..cut]));
        let parsed = result.unwrap_or_else(|_| panic!("truncation at {cut} panicked"));
        assert!(parsed.is_err(), "truncation at {cut} must be rejected");
    }
}

#[test]
fn byte_flips_inside_the_net_are_caught_by_the_checksum() {
    let doc = weights_doc();
    // The fnv1a checksum covers the embedded net document verbatim, so
    // any flip past the `"net"` key must fail — either as a parse error
    // or as a checksum mismatch, never a panic.
    let net_at = doc.find("\"net\"").expect("net key present");
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let at = rng.gen_range(net_at..doc.len());
        let mut bytes = doc.clone().into_bytes();
        bytes[at] ^= 0x40;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        let result = std::panic::catch_unwind(|| SurrogateModel::from_json(&corrupt));
        let parsed = result.unwrap_or_else(|_| panic!("flip at {at} panicked"));
        assert!(parsed.is_err(), "flip at byte {at} must be rejected");
    }
}

#[test]
fn wrong_format_tag_is_rejected_with_context() {
    let doc = weights_doc().replace("asura-surrogate-model", "some-other-doc");
    let err = match SurrogateModel::from_json(&doc) {
        Err(e) => e,
        Ok(_) => panic!("wrong format tag must be rejected"),
    };
    assert!(
        err.contains("asura-surrogate-model"),
        "unhelpful error: {err}"
    );
}

#[test]
fn train_sample_tensors_roundtrip_and_reject_corruption() {
    // TrainSample is a pair of tensors; its persistence (and the weights
    // document's Param blobs) ride on Tensor JSON.
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<f32> = (0..2 * 4 * 4 * 4)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let t = Tensor::from_vec(2, 4, 4, 4, data);
    let json = t.to_json();
    let back = Tensor::from_json(&json).expect("tensor round-trips");
    assert_eq!(back.to_json(), json);
    for i in 0..29 {
        let cut = (json.len() * i) / 29;
        assert!(
            Tensor::from_json(&json[..cut]).is_err(),
            "tensor truncation at {cut} must be rejected"
        );
    }
}

#[test]
fn resolve_turns_bad_weight_files_into_typed_errors() {
    let dir = scratch_dir("resolve");

    // Missing file.
    let missing = PredictorKind::UNetTrained {
        path: dir.join("nope.json").display().to_string(),
        seed: 1,
    };
    match missing.resolve() {
        Err(DistError::BadWeights { path, .. }) => assert!(path.contains("nope.json")),
        other => panic!("missing file must be BadWeights, got {other:?}"),
    }

    // Corrupt file.
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, "{\"format\":\"nope\"}").unwrap();
    let corrupt = PredictorKind::UNetTrained {
        path: bad_path.display().to_string(),
        seed: 1,
    };
    assert!(matches!(
        corrupt.resolve(),
        Err(DistError::BadWeights { .. })
    ));

    // Valid file resolves to inline weights that carry the exact text,
    // and only then does a model state exist to embed in snapshots.
    let good_path = dir.join("good.json");
    let doc = weights_doc();
    std::fs::write(&good_path, &doc).unwrap();
    let good = PredictorKind::UNetTrained {
        path: good_path.display().to_string(),
        seed: 5,
    };
    assert_eq!(good.model_state(), None, "unresolved: nothing to embed");
    let resolved = good.resolve().expect("valid weights resolve");
    match &resolved {
        PredictorKind::UNetWeights { seed, weights_json } => {
            assert_eq!(*seed, 5);
            assert_eq!(*weights_json, doc);
        }
        other => panic!("expected inline weights, got {other:?}"),
    }
    let state = resolved.model_state().expect("inline weights embed");
    assert_eq!(state.seed, 5);
    assert_eq!(state.weights_json, doc);

    // Non-file kinds resolve to themselves.
    assert!(matches!(
        PredictorKind::SedovOverlay.resolve(),
        Ok(PredictorKind::SedovOverlay)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loader_overrides_the_deployed_region_side() {
    let doc = weights_doc();
    let p = UNetPredictor::from_weights(1, &doc, 42.5).expect("valid weights");
    assert_eq!(p.model.config.side, 42.5, "deployment geometry wins");
    assert!(UNetPredictor::from_weights(1, "[1, 2", 42.5).is_err());
}

/// The CLI regression the supervisor depends on: a bad `--predictor`
/// weights file is exit 2 — a *permanent* failure that must never enter
/// the crash-retry loop (`permanent_exit_codes` includes 2).
#[test]
fn cli_exits_2_on_bad_weights_and_never_panics() {
    let dir = scratch_dir("cli");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"format\":\"nope\"}").unwrap();

    for (tag, path) in [
        ("corrupt", bad.display().to_string()),
        ("missing", dir.join("absent.json").display().to_string()),
    ] {
        let out = Command::new(BIN)
            .args(["--scenario", "supernova_remnant", "--steps", "1"])
            .arg("--predictor")
            .arg(format!("unet:{path}"))
            .arg("--run-dir")
            .arg(dir.join(tag))
            .output()
            .expect("spawn asura");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{tag} weights must exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot load surrogate weights"),
            "{tag}: uninformative stderr: {stderr}"
        );
    }

    // A malformed --predictor value is a plain usage error, also exit 2.
    let out = Command::new(BIN)
        .args(["--scenario", "supernova_remnant", "--predictor", "magic"])
        .output()
        .expect("spawn asura");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
