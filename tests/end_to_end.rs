//! End-to-end integration tests: galaxy ICs through the full surrogate
//! simulation loop, checking the cross-crate invariants a user relies on.

use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use galactic_ic::GalaxyModel;

fn realize_mini(n_dm: usize, n_star: usize, n_gas: usize, seed: u64) -> Vec<Particle> {
    let model = GalaxyModel::mw_mini();
    let real = model.realize(n_dm, n_star, n_gas, seed);
    let mut particles = Vec::new();
    let mut id = 0u64;
    for (p, v) in real.dm.pos.iter().zip(&real.dm.vel) {
        particles.push(Particle::dm(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_dm_particle,
        ));
        id += 1;
    }
    for (p, v) in real.stars.pos.iter().zip(&real.stars.vel) {
        particles.push(Particle::star(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_star_particle,
            -500.0,
        ));
        id += 1;
    }
    for (p, v) in real.gas.pos.iter().zip(&real.gas.vel) {
        particles.push(Particle::gas(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_gas_particle,
            8.0,
            GalaxyModel::mw_mini().gas_disk.r_scale * 0.05,
        ));
        id += 1;
    }
    particles
}

#[test]
fn galaxy_patch_runs_and_conserves_mass() {
    let particles = realize_mini(400, 300, 500, 1);
    let m0: f64 = particles.iter().map(|p| p.mass).sum();
    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.2,
        eps: 25.0,
        n_ngb: 16,
        cooling: true,
        star_formation: true,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 2);
    sim.run(4);
    let m1: f64 = sim.particles.iter().map(|p| p.mass).sum();
    assert!(
        ((m1 - m0) / m0).abs() < 1e-9,
        "total mass must be conserved: {m0} -> {m1}"
    );
    assert!(sim.particles.iter().all(|p| p.pos.is_finite()));
    assert!(sim.particles.iter().all(|p| p.vel.is_finite()));
}

#[test]
fn disk_remains_bound_and_rotating() {
    let particles = realize_mini(600, 400, 400, 3);
    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.2,
        eps: 25.0,
        n_ngb: 16,
        cooling: false,
        star_formation: false,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 4);
    let lz_before: f64 = sim
        .particles
        .iter()
        .map(|p| p.mass * (p.pos.x * p.vel.y - p.pos.y * p.vel.x))
        .sum();
    sim.run(5);
    let lz_after: f64 = sim
        .particles
        .iter()
        .map(|p| p.mass * (p.pos.x * p.vel.y - p.pos.y * p.vel.x))
        .sum();
    // Angular momentum is conserved by gravity + axisymmetric-ish hydro.
    assert!(
        ((lz_after - lz_before) / lz_before).abs() < 0.05,
        "Lz drift: {lz_before:.3e} -> {lz_after:.3e}"
    );
    // The system stays bound: no particle escapes to absurd radii.
    let r_max = sim
        .particles
        .iter()
        .map(|p| p.pos.norm())
        .fold(0.0f64, f64::max);
    assert!(r_max < 1.0e5, "particle escaped to {r_max} pc");
}

#[test]
fn surrogate_and_conventional_agree_when_no_sne_fire() {
    // Without any massive stars the two schemes integrate identical
    // physics with the same fixed dt (the CFL never binds for warm gas at
    // this resolution), so particle positions must match closely.
    let particles = realize_mini(200, 0, 300, 5);
    let mk = |scheme| SimConfig {
        scheme,
        dt_global: 0.05,
        eps: 25.0,
        n_ngb: 16,
        cooling: false,
        star_formation: false,
        ..Default::default()
    };
    let mut a = Simulation::new(mk(Scheme::Surrogate), particles.clone(), 6);
    let mut b = Simulation::new(mk(Scheme::Conventional), particles, 6);
    a.run(3);
    b.run(3);
    assert_eq!(a.stats.sn_events, 0);
    assert_eq!(b.stats.sn_events, 0);
    assert_eq!(a.particles.len(), b.particles.len());
    let mut worst = 0.0f64;
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        worst = worst.max((pa.pos - pb.pos).norm());
    }
    assert!(
        worst < 1e-6,
        "schemes diverged without SNe: max |dx| = {worst}"
    );
}

#[test]
fn energy_is_bounded_in_adiabatic_run() {
    let particles = realize_mini(500, 300, 300, 7);
    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.1,
        eps: 25.0,
        n_ngb: 16,
        cooling: false,
        star_formation: false,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 8);
    let e0 = sim.total_energy();
    sim.run(6);
    let e1 = sim.total_energy();
    assert!(
        ((e1 - e0) / e0.abs()) < 0.10,
        "energy drift too large: {e0:.4e} -> {e1:.4e}"
    );
}
