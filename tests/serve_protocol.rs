//! End-to-end tests of the `asura serve` daemon: a real daemon process
//! per test (ephemeral port, private root), driven over the line protocol
//! by [`asura_core::serve::request`]. The chaos cases mirror
//! `tests/supervised_chaos.rs`: kill a worker *child* mid-run (per-run
//! `ASURA_FAULTS` override) and kill the *daemon* itself (`kill -9` +
//! restart), asserting in both cases that every run still converges to a
//! final checkpoint bitwise identical to an undisturbed run.

use asura_core::faults::{ATTEMPT_ENV, FAULTS_ENV, FAULT_KILL_EXIT};
use asura_core::serve::{self, RunState};
use asura_core::supervise::{IncidentKind, IncidentLog, Outcome};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_asura");

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asura-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn a daemon on an ephemeral port and wait for its `serve.json`.
/// Every returned child is reaped by `shutdown` (or an explicit
/// kill+wait in the kill -9 test), which clippy cannot see from here.
#[allow(clippy::zombie_processes)]
fn start_daemon(root: &Path, max_concurrent: usize) -> (Child, String) {
    // A kill -9'd daemon leaves its serve.json behind; drop it so the
    // wait below can't pick up the dead instance's address.
    let _ = fs::remove_file(root.join("serve.json"));
    let child = Command::new(BIN)
        .arg("serve")
        .arg("--root")
        .arg(root)
        .args(["--addr", "127.0.0.1:0"])
        .args(["--max-concurrent", &max_concurrent.to_string()])
        .args(["--backoff-ms", "10"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        // Never inherit a fault plan from the test runner's environment —
        // fleet chaos is injected per run via the `faults` override.
        .env_remove(FAULTS_ENV)
        .env_remove(ATTEMPT_ENV)
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(addr) = serve::read_serve_addr(root) {
            return (child, addr);
        }
        assert!(Instant::now() < deadline, "daemon never wrote serve.json");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn request_one(addr: &str, line: &str) -> String {
    let lines = serve::request(addr, line).unwrap();
    assert_eq!(lines.len(), 1, "{line}: expected one response line");
    lines.into_iter().next().unwrap()
}

fn submit(addr: &str, scenario: &str, overrides: &str) -> String {
    let reply = request_one(addr, &format!("SUBMIT {scenario} {overrides}"));
    assert!(reply.contains("\"ok\":true"), "SUBMIT failed: {reply}");
    let id = reply
        .split("\"id\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .unwrap_or_else(|| panic!("no id in {reply}"));
    id.to_string()
}

/// Poll STATUS until the run reaches `want`; panics if it lands in a
/// different terminal state first.
fn wait_state(addr: &str, id: &str, want: RunState) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request_one(addr, &format!("STATUS {id}"));
        let state = reply
            .split("\"state\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .and_then(RunState::parse)
            .unwrap_or_else(|| panic!("unparseable STATUS reply: {reply}"));
        if state == want {
            return reply;
        }
        assert!(
            !state.is_terminal(),
            "{id}: wanted {}, ended {}: {reply}",
            want.as_str(),
            state.as_str()
        );
        assert!(
            Instant::now() < deadline,
            "{id}: still {} after 120s",
            state.as_str()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn shutdown(addr: &str, mut daemon: Child) {
    let reply = request_one(addr, "SHUTDOWN");
    assert!(reply.contains("\"ok\":true"), "SHUTDOWN failed: {reply}");
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon must exit cleanly, got {status}");
}

fn read_log(root: &Path, id: &str) -> IncidentLog {
    let text = fs::read_to_string(root.join(id).join("supervisor.json")).unwrap();
    IncidentLog::from_json(&text).unwrap()
}

#[test]
fn fleet_chaos_killed_child_resumes_bitwise_identical_to_its_neighbor() {
    let root = tmpdir("chaos");
    let (daemon, addr) = start_daemon(&root, 2);

    // Two identical quickstart runs; the second has its attempt-0 child
    // killed after step 3 (checkpoints at 2 and 4, so it resumes from 2).
    let clean = submit(&addr, "quickstart", "{\"steps\":4,\"snapshot_every\":2}");
    let faulted = submit(
        &addr,
        "quickstart",
        "{\"steps\":4,\"snapshot_every\":2,\"faults\":\"kill@3#0\"}",
    );
    wait_state(&addr, &clean, RunState::Completed);
    let status = wait_state(&addr, &faulted, RunState::Completed);
    assert!(
        status.contains("\"incidents\":1"),
        "STATUS must surface the incident: {status}"
    );

    let log = read_log(&root, &faulted);
    assert_eq!(log.outcome, Some(Outcome::Completed { attempts: 2 }));
    assert_eq!(log.incidents.len(), 1);
    assert_eq!(
        log.incidents[0].kind,
        IncidentKind::Crash {
            exit_code: FAULT_KILL_EXIT
        }
    );
    assert_eq!(log.incidents[0].resumed_from_step, Some(2));
    assert!(read_log(&root, &clean).incidents.is_empty());

    // The killed-and-resumed run must converge to exactly the state of
    // its undisturbed twin.
    let reference = fs::read(root.join(&clean).join("checkpoint-000004.bin")).unwrap();
    let resumed = fs::read(root.join(&faulted).join("checkpoint-000004.bin")).unwrap();
    assert_eq!(
        resumed, reference,
        "final checkpoint differs from the undisturbed run"
    );
    shutdown(&addr, daemon);
}

#[test]
fn daemon_kill9_restart_adopts_fleet_and_completes_all_runs() {
    let root = tmpdir("kill9");
    let (mut daemon, addr) = start_daemon(&root, 1);

    // Serial queue: the second run is still queued when the daemon dies.
    let first = submit(&addr, "quickstart", "{\"steps\":8,\"snapshot_every\":2}");
    let second = submit(&addr, "quickstart", "{\"steps\":8,\"snapshot_every\":2}");
    wait_state(&addr, &first, RunState::Running);
    daemon.kill().unwrap(); // SIGKILL: no drain, no cleanup
    daemon.wait().unwrap();

    // The restarted daemon re-adopts fleet.json: the interrupted run goes
    // back to queued and resumes from its rotation; the queued run is
    // dispatched as normal.
    let (daemon, addr) = start_daemon(&root, 1);
    wait_state(&addr, &first, RunState::Completed);
    wait_state(&addr, &second, RunState::Completed);

    for id in [&first, &second] {
        assert!(
            root.join(id).join("diagnostics.json").exists(),
            "{id}: diagnostics missing"
        );
    }
    // Both runs are identical configurations, so the interrupted-and-
    // adopted one must still converge bitwise to its undisturbed twin.
    let a = fs::read(root.join(&first).join("checkpoint-000008.bin")).unwrap();
    let b = fs::read(root.join(&second).join("checkpoint-000008.bin")).unwrap();
    assert_eq!(a, b, "adopted run diverged from the undisturbed run");
    shutdown(&addr, daemon);
}

#[test]
fn cancel_dequeues_queued_runs_and_kills_running_ones() {
    let root = tmpdir("cancel");
    let (daemon, addr) = start_daemon(&root, 1);

    // A long run hogs the single slot; a second stays queued behind it.
    let running = submit(&addr, "quickstart", "{\"steps\":200}");
    let queued = submit(&addr, "quickstart", "{\"steps\":4}");
    wait_state(&addr, &running, RunState::Running);

    // Canceling a queued run is immediate — it never dispatches.
    let reply = request_one(&addr, &format!("CANCEL {queued}"));
    assert!(reply.contains("\"state\":\"canceled\""), "{reply}");
    // Canceling a running run kills its child and records the outcome.
    let reply = request_one(&addr, &format!("CANCEL {running}"));
    assert!(reply.contains("\"ok\":true"), "{reply}");
    wait_state(&addr, &running, RunState::Canceled);
    assert!(matches!(
        read_log(&root, &running).outcome,
        Some(Outcome::Canceled { .. })
    ));
    // A canceled run cannot be canceled again.
    let reply = request_one(&addr, &format!("CANCEL {running}"));
    assert!(reply.contains("\"ok\":false"), "{reply}");
    shutdown(&addr, daemon);
}

#[test]
fn watch_streams_diagnostics_rows_then_a_done_line() {
    let root = tmpdir("watch");
    let (daemon, addr) = start_daemon(&root, 1);
    let id = submit(&addr, "quickstart", "{\"steps\":4}");

    // WATCH from submission time: blocks until the run completes, rows
    // streaming in as the child lands them.
    let lines = serve::request(&addr, &format!("WATCH {id}")).unwrap();
    assert!(lines.len() >= 5, "4 sample rows + done line, got {lines:?}");
    let (done, rows) = lines.split_last().unwrap();
    for (n, row) in rows.iter().enumerate() {
        assert!(row.contains("\"step\":"), "row {n} malformed: {row}");
    }
    assert!(done.contains("\"done\":true"), "{done}");
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    shutdown(&addr, daemon);
}

#[test]
fn protocol_errors_come_back_as_ok_false() {
    let root = tmpdir("errors");
    let (daemon, addr) = start_daemon(&root, 1);
    for line in [
        "FROBNICATE",
        "SUBMIT no_such_scenario",
        "SUBMIT quickstart {\"stepz\":4}",
        "STATUS r9999-nope",
        "CANCEL r9999-nope",
        "SHUTDOWN NOW",
    ] {
        let reply = request_one(&addr, line);
        assert!(
            reply.contains("\"ok\":false") && reply.contains("\"error\":"),
            "`{line}` should error, got {reply}"
        );
    }
    // The daemon is unharmed by garbage requests.
    let reply = request_one(&addr, "LIST");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    shutdown(&addr, daemon);
}
