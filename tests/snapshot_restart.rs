//! Restart determinism: the checkpoint/restore subsystem's acceptance
//! tests. A run of `2k` steps must be **bitwise identical** to running `k`
//! steps, snapshotting, serializing the snapshot through the on-disk
//! format, restoring, and running `k` more — in both timestep modes and
//! with an SN region prediction still pending in the pool queue at the
//! snapshot step. This forces every piece of hidden driver state (RNG
//! stream, CFL signal-speed stash, pending predictions, schedule, id
//! counter) to be explicit and serialized.

use asura::scenarios;
use asura_core::dist::{run_distributed, run_distributed_resume, DistConfig, PredictorKind};
use asura_core::snapshot::{DistSnapshot, SimSnapshot};
use asura_core::{Particle, Scheme, SimConfig, Simulation, TimestepMode};
use fdps::exchange::Routing;
use fdps::Vec3;

/// Exact-state comparison: particle vectors (all fields, f64 `==`), clocks
/// and cumulative statistics.
fn assert_states_identical(full: &Simulation, resumed: &Simulation, label: &str) {
    assert_eq!(full.step_count, resumed.step_count, "{label}: step_count");
    assert_eq!(full.time.to_bits(), resumed.time.to_bits(), "{label}: time");
    assert_eq!(
        full.particles.len(),
        resumed.particles.len(),
        "{label}: particle count"
    );
    for (a, b) in full.particles.iter().zip(&resumed.particles) {
        assert_eq!(a, b, "{label}: particle {} diverged", a.id);
    }
    assert_eq!(full.stats, resumed.stats, "{label}: stats");
    assert_eq!(
        full.pending_regions(),
        resumed.pending_regions(),
        "{label}: pending queue length"
    );
}

/// Run `2k` steps straight; independently run `k`, push the snapshot
/// through the **serialized** binary format, restore, run `k` more.
fn restart_roundtrip(
    cfg: SimConfig,
    particles: Vec<Particle>,
    seed: u64,
    k: usize,
    label: &str,
) -> (Simulation, Simulation, SimSnapshot) {
    let mut full = Simulation::new(cfg, particles.clone(), seed);
    full.run(2 * k);

    let mut first = Simulation::new(cfg, particles, seed);
    first.run(k);
    let snap = first.snapshot();
    // On-disk round trip: restart from bytes, not from the live object.
    let snap = SimSnapshot::from_bytes(&snap.to_bytes()).expect("binary roundtrip");
    // The JSON encoding must restart identically too.
    let via_json = SimSnapshot::from_json(&snap.to_json()).expect("json roundtrip");
    assert_eq!(via_json, snap, "{label}: JSON and binary restarts disagree");

    let mut resumed = Simulation::restore(&snap);
    resumed.run(k);
    assert_states_identical(&full, &resumed, label);
    (full, resumed, snap)
}

fn gas_blob(n_side: usize, spacing: f64, u: f64) -> Vec<Particle> {
    let mut out = Vec::new();
    let mut id = 0;
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                out.push(Particle::gas(
                    id,
                    Vec3::new(
                        (i as f64 - n_side as f64 / 2.0) * spacing,
                        (j as f64 - n_side as f64 / 2.0) * spacing,
                        (k as f64 - n_side as f64 / 2.0) * spacing,
                    ),
                    Vec3::ZERO,
                    1.0,
                    u,
                    spacing * 1.3,
                ));
                id += 1;
            }
        }
    }
    out
}

#[test]
fn surrogate_global_restart_with_pending_sn_region_is_bitwise_identical() {
    // The supernova_remnant scenario: SN fires on step 2, pool latency 5,
    // so at the snapshot step (4) the prediction is still in flight — the
    // pending queue must survive serialization and apply on schedule.
    let (cfg, particles) = scenarios::find("supernova_remnant")
        .expect("registered")
        .build(1);
    let (full, _, snap) = restart_roundtrip(cfg, particles, 5, 4, "surrogate/global");
    assert_eq!(full.stats.sn_events, 1, "the SN must fire before step 4");
    assert_eq!(
        snap.pending.len(),
        1,
        "the prediction must be in flight at the snapshot step"
    );
    assert_eq!(
        full.stats.regions_applied, 1,
        "and must have been applied by step 8"
    );
}

#[test]
fn conventional_global_restart_is_bitwise_identical() {
    // The CFL-adaptive shared step consumes the *previous* step's
    // signal-speed stash — restart determinism proves last_vsig is
    // serialized, not silently recomputed. Hot gas so the CFL criterion
    // actually undercuts the global step.
    let mut particles = gas_blob(6, 0.5, 1.0e5);
    particles.push(Particle::dm(
        particles.len() as u64,
        Vec3::new(6.0, 0.0, 0.0),
        Vec3::ZERO,
        50.0,
    ));
    let cfg = SimConfig {
        scheme: Scheme::Conventional,
        dt_global: 2.0e-3,
        cooling: false,
        star_formation: false,
        eps: 1.0,
        ..Default::default()
    };
    let (full, resumed, _) = restart_roundtrip(cfg, particles, 3, 3, "conventional/global");
    assert!(full.stats.dt_min_seen < cfg.dt_global, "CFL engaged");
    assert_eq!(
        full.stats.dt_min_seen.to_bits(),
        resumed.stats.dt_min_seen.to_bits()
    );
}

#[test]
fn conventional_block_restart_is_bitwise_identical() {
    // The spiked-dt stress scenario under hierarchical block timesteps:
    // schedule assignment, substep bookkeeping and cross-substep tree reuse
    // must all re-derive identically after the restore.
    let (cfg, particles) = scenarios::find("spiked_dt").expect("registered").build(1);
    assert!(matches!(cfg.timestep, TimestepMode::Block { .. }));
    let (full, resumed, snap) = restart_roundtrip(cfg, particles, 7, 3, "conventional/block");
    assert!(
        full.stats.substeps > full.stats.steps,
        "the hierarchy must engage"
    );
    assert!(
        snap.schedule.is_some(),
        "the snapshot must carry the level assignment"
    );
    assert_eq!(full.stats.substeps, resumed.stats.substeps);
    assert_eq!(full.stats.tree_refreshes, resumed.stats.tree_refreshes);
    assert_eq!(full.stats.tree_rebuilds, resumed.stats.tree_rebuilds);
}

#[test]
fn restart_preserves_the_star_formation_rng_stream() {
    // Stochastic star formation draws from the driver RNG every step; a
    // restart that re-seeded instead of restoring the stream would fork the
    // history. Dense cold gas so stars actually form on both sides of the
    // snapshot.
    let mut particles = gas_blob(5, 0.5, 1e-4);
    for p in particles.iter_mut() {
        p.mass = 5.0;
    }
    let cfg = SimConfig {
        dt_global: 0.5,
        cooling: false,
        star_formation: true,
        eps: 0.5,
        ..Default::default()
    };
    let (full, resumed, _) = restart_roundtrip(cfg, particles, 6, 3, "sf-rng");
    assert!(
        full.stats.stars_formed > 0,
        "stars must form for the test to bite"
    );
    assert_eq!(full.stats.stars_formed, resumed.stats.stars_formed);
    // New stars got ids from the restored counter, not duplicates.
    let mut ids: Vec<u64> = resumed.particles.iter().map(|p| p.id).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate ids after restart");
}

#[test]
fn distributed_block_resume_is_bitwise_with_the_schedule_in_the_snapshot() {
    // The distributed analogue of the conventional/block restart: 4 base
    // steps straight vs snapshot-at-2 + resume-for-2 under the
    // world-reduced block hierarchy, with the checkpoint pushed through
    // *both* DistSnapshot codecs. The snapshot carries the per-rank
    // schedule of the base step it was gathered in.
    let mut particles = gas_blob(6, 1.0, 1.0);
    particles[100].u = 1.0e8; // deep levels on the owning rank
    particles.push(Particle::dm(
        particles.len() as u64,
        Vec3::new(8.0, 0.0, 0.0),
        Vec3::ZERO,
        50.0,
    ));
    let cfg = DistConfig {
        grid: (2, 1, 1),
        n_pool: 1,
        routing: Routing::Flat,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            timestep: TimestepMode::Block { max_level: 5 },
            dt_global: 2.0e-3,
            pool_latency_steps: 2,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 1.0,
            ..Default::default()
        },
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 2,
        steps: 4,
    };
    let full = run_distributed(&cfg, &particles).expect("dist run");
    assert!(
        full.rank_stats.iter().all(|s| s.substeps > full.steps),
        "the hierarchy must engage"
    );
    let snap = &full.snapshots[0];
    assert_eq!(snap.step, 2);
    assert_eq!(
        snap.schedules.len(),
        cfg.n_main(),
        "the checkpoint must carry one schedule per rank"
    );

    // Binary and JSON codecs must agree and both restart bitwise.
    let via_bin = DistSnapshot::from_bytes(&snap.to_bytes()).expect("binary roundtrip");
    let via_json = DistSnapshot::from_json(&snap.to_json()).expect("json roundtrip");
    assert_eq!(via_bin, *snap);
    assert_eq!(via_json, *snap);

    let mut resume_cfg = cfg;
    resume_cfg.steps = 2;
    let resumed = run_distributed_resume(&resume_cfg, &via_json).expect("dist resume");
    assert_eq!(resumed.steps, 2);
    assert_eq!(full.final_state.len(), resumed.final_state.len());
    for (a, b) in full.final_state.iter().zip(&resumed.final_state) {
        assert_eq!(a, b, "resumed particle {} diverged", a.id);
    }
    // The resumed ranks re-derive the same world schedule: substep totals
    // over the overlapping base steps agree.
    let full_subs: Vec<u64> = full.rank_stats.iter().map(|s| s.substeps).collect();
    let resumed_subs: Vec<u64> = resumed.rank_stats.iter().map(|s| s.substeps).collect();
    assert!(resumed_subs.iter().all(|&s| s == resumed_subs[0]));
    assert!(
        resumed_subs[0] <= full_subs[0],
        "resume covers the tail of the full run's substeps"
    );
}

#[test]
fn snapshot_cadence_fires_through_run_with_snapshots() {
    let (cfg, particles) = scenarios::find("spiked_dt").expect("registered").build(2);
    let cfg = SimConfig {
        snapshot_every: 2,
        ..cfg
    };
    let mut sim = Simulation::new(cfg, particles, 9);
    let mut captured: Vec<u64> = Vec::new();
    sim.run_with_snapshots(5, |s| captured.push(s.step_count));
    assert_eq!(captured, vec![2, 4], "cadence 2 over 5 steps");
    // Cadence 0 never fires.
    sim.config.snapshot_every = 0;
    sim.run_with_snapshots(2, |_| panic!("cadence 0 must never snapshot"));
}

#[test]
fn corrupt_and_foreign_snapshot_files_are_rejected_without_panic() {
    let (cfg, particles) = scenarios::find("supernova_remnant")
        .expect("registered")
        .build(3);
    let mut sim = Simulation::new(cfg, particles, 1);
    sim.run(3);
    let snap = sim.snapshot();

    // Corrupt every single payload byte position? Too slow — sample a
    // spread of positions; each flip must produce an error, never a panic.
    let bytes = snap.to_bytes();
    for k in (20..bytes.len()).step_by(bytes.len() / 37 + 1) {
        let mut corrupt = bytes.clone();
        corrupt[k] ^= 0x10;
        assert!(
            SimSnapshot::from_bytes(&corrupt).is_err(),
            "flip at byte {k} must be detected"
        );
    }
    // Truncations at every header boundary.
    for cut in [0, 7, 8, 12, 19, 20, bytes.len() - 1] {
        assert!(SimSnapshot::from_bytes(&bytes[..cut]).is_err());
    }
    // JSON with a flipped state digit fails the checksum.
    let text = snap.to_json();
    let tampered = text.replacen("\"step_count\":3", "\"step_count\":4", 1);
    assert_ne!(tampered, text, "test must actually tamper");
    assert!(SimSnapshot::from_json(&tampered).is_err());
}
