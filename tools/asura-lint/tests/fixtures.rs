//! Fixture suite for `asura-lint`: drives the real binary over the
//! violation/clean trees under `tests/fixtures/` (which the workspace
//! walker deliberately skips) and over the live workspace itself.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_lint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_asura-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("asura-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Assert the report has a findings-table row for `rule` at `path`.
fn assert_finding(report: &str, rule: &str, path: &str) {
    let needle = format!("| `{rule}` | `{path}");
    assert!(
        report.contains(&needle),
        "expected a `{rule}` finding at {path} in:\n{report}"
    );
}

#[test]
fn bad_tree_trips_every_rule() {
    let out = run_lint(&crate_dir().join("tests/fixtures/bad"));
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let report = stdout(&out);
    assert_finding(&report, "atomic-io", "crates/core/src/state.rs:4");
    assert_finding(&report, "atomic-io", "crates/core/src/state.rs:5");
    assert_finding(&report, "no-fma", "crates/gravity/src/kernel.rs:3");
    assert_finding(&report, "safety-comment", "crates/gravity/src/simd.rs:3");
    assert_finding(&report, "no-panic-daemon", "crates/core/src/serve.rs:3");
    assert_finding(&report, "no-panic-daemon", "crates/core/src/serve.rs:5");
    assert_finding(
        &report,
        "no-wallclock-determinism",
        "crates/core/src/sim.rs:5",
    );
    assert_finding(
        &report,
        "ordered-iteration",
        "crates/core/src/snapshot.rs:2",
    );
    // The reasonless suppression in sim.rs is itself a finding and does
    // NOT silence the wall-clock read it sits above.
    assert_finding(&report, "lint-allow", "crates/core/src/sim.rs:4");
}

#[test]
fn clean_tree_is_clean_and_suppression_counts() {
    let out = run_lint(&crate_dir().join("tests/fixtures/clean"));
    let report = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must exit 0:\n{report}"
    );
    assert!(report.contains("0 finding(s)"), "{report}");
    // The one reasoned suppression is reported, and marked used.
    assert!(
        report.contains("| `ordered-iteration` | `crates/core/src/sim.rs:8` | yes |"),
        "suppression row missing or unused:\n{report}"
    );
}

#[test]
fn scope_limits_where_rules_fire() {
    // The same unwrap is a violation in serve.rs and legal one directory
    // over: the rule binds to the path, not the code.
    let dir = std::env::temp_dir().join("asura-lint-scope-fixture");
    let _ = std::fs::remove_dir_all(&dir);
    let in_scope = dir.join("crates/core/src");
    std::fs::create_dir_all(&in_scope).unwrap();
    let code = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    std::fs::write(in_scope.join("serve.rs"), code).unwrap();
    std::fs::write(in_scope.join("elsewhere.rs"), code).unwrap();
    let out = run_lint(&dir);
    let report = stdout(&out);
    assert_eq!(out.status.code(), Some(1));
    assert_finding(&report, "no-panic-daemon", "crates/core/src/serve.rs:1");
    assert!(
        !report.contains("elsewhere.rs"),
        "out-of-scope file must not fire:\n{report}"
    );
}

#[test]
fn list_rules_prints_the_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_asura-lint"))
        .arg("--list-rules")
        .output()
        .expect("asura-lint binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for rule in [
        "atomic-io",
        "no-fma",
        "safety-comment",
        "no-panic-daemon",
        "no-wallclock-determinism",
        "ordered-iteration",
    ] {
        assert!(text.contains(rule), "catalog missing {rule}:\n{text}");
    }
}

/// The acceptance bar: the shipped tree lints clean. Keeping this as a
/// test means `cargo test` alone catches a new violation even before CI's
/// dedicated job runs.
#[test]
fn self_lint_smoke() {
    let root = crate_dir()
        .parent()
        .and_then(Path::parent)
        .expect("workspace root exists")
        .to_path_buf();
    let out = run_lint(&root);
    let report = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean:\n{report}"
    );
    assert!(report.contains("No violations"), "{report}");
}
