// Fixture: no-fma compliant — explicit mul then add, and the forbidden
// names appearing in comments (mul_add, _mm256_fmadd_pd) or strings must
// not trip the scanner.
pub fn accumulate(a: f64, b: f64, c: f64) -> f64 {
    let label = "mul_add is banned here";
    let _ = label;
    a * b + c
}
