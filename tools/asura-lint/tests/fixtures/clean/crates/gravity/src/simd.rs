// Fixture: safety-comment compliant, in both accepted shapes — same-line
// and above an attribute stack.
pub fn read_first(p: *const f64) -> f64 {
    // SAFETY: the caller guarantees p points at least one f64.
    unsafe { *p }
}

// SAFETY: callers must check for AVX2 before invoking.
#[target_feature(enable = "avx2")]
#[cfg(target_arch = "x86_64")]
pub unsafe fn body() {}
