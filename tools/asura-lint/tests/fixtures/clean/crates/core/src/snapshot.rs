// Fixture: ordered-iteration compliant — deterministic order via BTreeMap.
use std::collections::BTreeMap;

pub fn manifest(entries: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in entries {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
