// Fixture: no-wallclock-determinism compliant (durations computed from
// step counts), plus a *reasoned* suppression silencing a lookup-only
// HashMap — this is the suppression-accepting positive case.
pub fn step(step_count: u64, dt: f64) -> f64 {
    step_count as f64 * dt
}

// lint:allow(ordered-iteration): keyed lookup only — never iterated.
pub type IdIndex = std::collections::HashMap<u64, usize>;
