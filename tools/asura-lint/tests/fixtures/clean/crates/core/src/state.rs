// Fixture: atomic-io compliant — persistence goes through the ckpt
// helper, and the raw write lives only in a #[cfg(test)] item (test code
// is exempt: damage-injection tests must write torn bytes).
pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    crate::ckpt::atomic_write(path, bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn torn_write() {
        std::fs::write("scratch", b"torn").unwrap();
    }
}
