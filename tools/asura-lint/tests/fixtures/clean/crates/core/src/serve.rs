// Fixture: no-panic-daemon compliant — typed errors, and the non-panicking
// unwrap_* family stays legal.
pub fn handle(input: Option<&str>) -> Result<usize, String> {
    let line = input.ok_or("missing request line")?;
    Ok(line.len().max(1).min(usize::MAX))
}

pub fn fallback(input: Option<usize>) -> usize {
    input.unwrap_or(0)
}
