// Fixture: atomic-io violations (never compiled — exercised by the
// fixture test suite through the asura-lint binary).
pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)?;
    let _file = std::fs::File::create(path.with_extension("tmp"))?;
    Ok(())
}
