// Fixture: no-panic-daemon violations.
pub fn handle(input: Option<&str>) -> usize {
    let line = input.unwrap();
    if line.is_empty() {
        panic!("empty request");
    }
    line.len()
}
