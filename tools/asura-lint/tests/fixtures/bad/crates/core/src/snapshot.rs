// Fixture: ordered-iteration violation.
use std::collections::HashMap;

pub fn manifest(entries: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in entries {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
