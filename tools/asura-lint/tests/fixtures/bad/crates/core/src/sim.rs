// Fixture: no-wallclock-determinism violation, plus a reasonless
// suppression (which is itself a finding).
pub fn step() -> std::time::Instant {
    // lint:allow(no-wallclock-determinism)
    let t = std::time::Instant::now();
    t
}
