// Fixture: safety-comment violation (unsafe with no SAFETY comment).
pub fn read_first(p: *const f64) -> f64 {
    unsafe { *p }
}
