// Fixture: no-fma violations.
pub fn accumulate(a: f64, b: f64, c: f64) -> f64 {
    let fused = a.mul_add(b, c);
    fused
}
