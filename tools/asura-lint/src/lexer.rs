//! A comment- and string-aware Rust token scanner.
//!
//! This is not a full Rust lexer — it is exactly the subset the rule
//! engine needs: identifiers and punctuation with line numbers, with
//! string/char/byte/raw-string literals and comments consumed (never
//! tokenized), and every comment's text captured per line so the engine
//! can find `// SAFETY:` blocks and `// lint:allow(...)` suppressions.
//! The tricky corners it does handle: nested block comments, raw strings
//! with arbitrary `#` fences, byte strings, and the lifetime-vs-char
//! ambiguity of `'`.

/// What a token is; the rules only ever dispatch on these three classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fs`, `mul_add`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct,
    /// Numeric literal (kept so brace/position arithmetic stays honest).
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// The lexed file: tokens plus the comment text found on each line
/// (1-based line → concatenated comment text on that line).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<(usize, String)>,
}

impl Lexed {
    /// All comment text recorded for `line`, concatenated.
    pub fn comment_on(&self, line: usize) -> Option<&str> {
        self.comments
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
    }
}

/// Lex `src` into tokens and per-line comments.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let push_comment = |line: usize, text: &str, out: &mut Lexed| {
        if let Some((l, t)) = out.comments.last_mut() {
            if *l == line {
                t.push(' ');
                t.push_str(text);
                return;
            }
        }
        out.comments.push((line, text.to_string()));
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            push_comment(line, text.trim_start_matches('/').trim(), &mut out);
            continue;
        }
        // Block comment, possibly nested; text recorded line by line.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            let mut piece = String::new();
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        push_comment(line, piece.trim(), &mut out);
                        piece.clear();
                        line += 1;
                    } else {
                        piece.push(b[i]);
                    }
                    i += 1;
                }
            }
            push_comment(line, piece.trim(), &mut out);
            continue;
        }
        // Raw / byte / plain string literals. Handle the prefixed forms
        // before generic identifier lexing so `r#"…"#` is not an ident.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < n && b[j] == 'r' {
                j += 1;
            }
            let mut fence = 0usize;
            while j < n && b[j] == '#' {
                fence += 1;
                j += 1;
            }
            let is_raw = j > i + 1 || (j < n && b[j] == '"' && (fence > 0 || b[i + 1] == '"'));
            if j < n && b[j] == '"' && (is_raw || c == 'b') {
                // Raw string: ends at `"` followed by `fence` hashes.
                // Byte string b"..." uses the escaped scan below instead.
                if fence > 0 || (c == 'r') || (c == 'b' && b[i + 1] == 'r') {
                    i = j + 1;
                    'raw: while i < n {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        if b[i] == '"' {
                            let mut k = 0usize;
                            while k < fence && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == fence {
                                i += 1 + fence;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
                // b"...": fall through to escaped-string scan from j.
                i = j;
                line = scan_string(&b, &mut i, line);
                continue;
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                i += 1; // treat as the char-literal case below
                let mut k = i;
                line = scan_char(&b, &mut k, line);
                i = k;
                continue;
            }
            // Not a literal prefix: plain identifier starting with r/b.
        }
        if c == '"' {
            line = scan_string(&b, &mut i, line);
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`).
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') && b[i + 1] != '\\' {
                let mut j = i + 2;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    i = j + 1; // single-char literal like 'a'
                } else {
                    i += 1; // lifetime: skip the quote, lex the ident next
                }
                continue;
            }
            let mut k = i;
            line = scan_char(&b, &mut k, line);
            i = k;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scan a `"..."` literal from the opening quote; returns the updated line.
fn scan_string(b: &[char], i: &mut usize, mut line: usize) -> usize {
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            '\\' => *i += 2,
            '"' => {
                *i += 1;
                return line;
            }
            '\n' => {
                line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    line
}

/// Scan a `'…'` char literal from the opening quote.
fn scan_char(b: &[char], i: &mut usize, line: usize) -> usize {
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            '\\' => *i += 2,
            '\'' => {
                *i += 1;
                return line;
            }
            _ => *i += 1,
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r#"
            // fs::write in a comment
            /* unsafe in a block comment */
            let x = "fs::write inside a string";
            let y = 'u'; let z: &'static str = "s";
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"write".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"static".to_string()), "lifetime ident kept");
    }

    #[test]
    fn raw_strings_with_fences_are_consumed() {
        let src = r####"let s = r#"unsafe fs::write "quoted" "#; let t = mul;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t", "mul"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_consumed() {
        let src = r##"let a = b"unsafe"; let c = br#"fs::write"#; let d = b'x';"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ real_code";
        assert_eq!(idents(src), vec!["real_code"]);
    }

    #[test]
    fn comment_text_is_recorded_per_line() {
        let src = "// SAFETY: the pointer is valid\nlet x = 1; // trailing note\n";
        let lexed = lex(src);
        assert!(lexed.comment_on(1).unwrap().contains("SAFETY:"));
        assert!(lexed.comment_on(2).unwrap().contains("trailing note"));
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let src = "fn f<'a>(x: &'a str) { x.unwrap(); }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_with_escapes() {
        let src = r"let a = '\n'; let b = '\''; let c = '('; real";
        let ids = idents(src);
        assert_eq!(ids.last().unwrap(), "real");
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet target = 1;";
        let lexed = lex(src);
        let t = lexed.tokens.iter().find(|t| t.text == "target").unwrap();
        assert_eq!(t.line, 3);
    }
}
