//! The rule engine: file model, path scopes, suppressions, reporting.
//!
//! A [`FileModel`] is one lexed source file plus the derived facts every
//! rule needs: which lines sit inside `#[cfg(test)]` items (test code is
//! exempt — the invariants protect production paths, and the damage-
//! injection tests *must* write torn bytes), and which
//! `// lint:allow(<rule>): <reason>` suppressions are in force. A
//! suppression covers findings on its own line and on the next line that
//! carries code, must name a known rule, and must carry a non-empty
//! reason after the colon — a reasonless suppression is itself a
//! violation, so every silence in the tree is a documented decision.

use crate::lexer::{lex, Lexed, TokKind};
use crate::rules::{all_rules, Rule};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub reason: String,
    pub used: bool,
}

/// A source file ready for rule checks.
pub struct FileModel {
    /// Repo-relative path with `/` separators — what scopes match on.
    pub path: String,
    pub lexed: Lexed,
    /// Raw source lines (1-based access via `line_text`).
    pub lines: Vec<String>,
    /// Inclusive line spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
}

impl FileModel {
    pub fn parse(path: String, src: &str) -> FileModel {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let test_spans = find_test_spans(&lexed);
        let suppressions = find_suppressions(&path, &lexed);
        FileModel {
            path,
            lexed,
            lines,
            test_spans,
            suppressions,
        }
    }

    pub fn line_text(&self, line: usize) -> &str {
        self.lines.get(line.wrapping_sub(1)).map_or("", |s| s)
    }

    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Locate `#[cfg(test)]` attributes and the brace span of the item each
/// one gates. The scan is token-exact (comments/strings can't fake it);
/// an attribute gating a braceless item (`#[cfg(test)] use …;`) has no
/// span and is ignored.
fn find_test_spans(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let is = |i: usize, text: &str| toks.get(i).is_some_and(|t| t.text == text);
    let mut i = 0;
    while i < toks.len() {
        if is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]")
        {
            // Find the gated item's opening brace; stop at `;` (no body).
            let mut j = i + 7;
            let mut depth = 0i64;
            let mut open = None;
            while let Some(t) = toks.get(j) {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "{") => {
                        open = Some(j);
                        break;
                    }
                    (TokKind::Punct, ";") => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let start_line = toks[i].line;
                let mut k = open;
                while let Some(t) = toks.get(k) {
                    match (t.kind, t.text.as_str()) {
                        (TokKind::Punct, "{") => depth += 1,
                        (TokKind::Punct, "}") => {
                            depth -= 1;
                            if depth == 0 {
                                spans.push((start_line, t.line));
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
            }
        }
        i += 1;
    }
    spans
}

/// Parse every `lint:allow(<rule>): <reason>` comment in the file. A
/// malformed reason is recorded as empty and flagged by the engine.
fn find_suppressions(path: &str, lexed: &Lexed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            // Prose that *mentions* the syntax (like this file's docs)
            // is not a suppression: rule names are bare kebab-case.
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
            {
                rest = &after[close + 1..];
                continue;
            }
            let tail = &after[close + 1..];
            let reason = tail
                .strip_prefix(':')
                .map(|r| r.trim().to_string())
                .unwrap_or_default();
            out.push(Suppression {
                rule,
                path: path.to_string(),
                line: *line,
                reason,
                used: false,
            });
            rest = tail;
        }
    }
    out
}

/// Minimal glob matcher over `/`-separated relative paths. Supports `*`
/// (within one segment) and a trailing or inner `**` (any number of
/// segments, including zero). This covers every scope the rule table
/// uses; anything fancier belongs in a real glob crate we don't vendor.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    fn segs(s: &str) -> Vec<&str> {
        s.split('/').filter(|p| !p.is_empty()).collect()
    }
    fn seg_match(pat: &str, seg: &str) -> bool {
        // `*` within a segment: anchored greedy pieces.
        let pieces: Vec<&str> = pat.split('*').collect();
        if pieces.len() == 1 {
            return pat == seg;
        }
        let mut rest = seg;
        for (i, piece) in pieces.iter().enumerate() {
            if piece.is_empty() {
                continue;
            }
            match rest.find(piece) {
                Some(pos) => {
                    if i == 0 && pos != 0 {
                        return false;
                    }
                    rest = &rest[pos + piece.len()..];
                }
                None => return false,
            }
        }
        pieces.last().is_some_and(|p| p.is_empty()) || rest.is_empty()
    }
    fn rec(pat: &[&str], path: &[&str]) -> bool {
        match (pat.first(), path.first()) {
            (None, None) => true,
            (Some(&"**"), _) => rec(&pat[1..], path) || (!path.is_empty() && rec(pat, &path[1..])),
            (Some(p), Some(s)) if seg_match(p, s) => rec(&pat[1..], &path[1..]),
            _ => false,
        }
    }
    rec(&segs(pattern), &segs(path))
}

/// Does `path` fall inside `rule`'s scope?
pub fn in_scope(rule: &Rule, path: &str) -> bool {
    rule.include.iter().any(|p| path_matches(p, path))
        && !rule.exclude.iter().any(|p| path_matches(p, path))
}

/// The full result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
}

/// Lint a set of (relative path, source) pairs against every rule.
pub fn run(files: &[(String, String)]) -> Report {
    let rules = all_rules();
    let mut report = Report {
        files_scanned: files.len(),
        ..Default::default()
    };
    for (path, src) in files {
        let mut model = FileModel::parse(path.clone(), src);
        for rule in &rules {
            if !in_scope(rule, &model.path) {
                continue;
            }
            let raw = (rule.check)(&model);
            for f in raw {
                if model.in_test_code(f.line) {
                    continue;
                }
                // A suppression covers its own line and the next code line.
                let covering = model.suppressions.iter_mut().find(|s| {
                    s.rule == rule.name
                        && !s.reason.is_empty()
                        && (s.line == f.line
                            || FileModel::next_code_line_of(&model.lexed, s.line) == Some(f.line))
                });
                if let Some(s) = covering {
                    s.used = true;
                    continue;
                }
                report.findings.push(f);
            }
        }
        // Suppression hygiene: unknown rule names and missing reasons are
        // violations in their own right (and test code gets no pass here —
        // a suppression is documentation, wherever it sits).
        for s in &model.suppressions {
            if !rules.iter().any(|r| r.name == s.rule) {
                report.findings.push(Finding {
                    rule: "lint-allow",
                    path: s.path.clone(),
                    line: s.line,
                    message: format!("suppression names unknown rule `{}`", s.rule),
                });
            } else if s.reason.is_empty() {
                report.findings.push(Finding {
                    rule: "lint-allow",
                    path: s.path.clone(),
                    line: s.line,
                    message: format!(
                        "suppression of `{}` has no reason — write \
                         `// lint:allow({}): <why this site is exempt>`",
                        s.rule, s.rule
                    ),
                });
            }
        }
        report.suppressions.append(&mut model.suppressions);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

impl FileModel {
    /// First line after `line` that carries a token — static for use while
    /// the model is mutably borrowed elsewhere.
    fn next_code_line_of(lexed: &Lexed, line: usize) -> Option<usize> {
        lexed.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matching() {
        assert!(path_matches(
            "crates/gravity/**",
            "crates/gravity/src/kernel.rs"
        ));
        assert!(path_matches(
            "crates/unet/src/gemm.rs",
            "crates/unet/src/gemm.rs"
        ));
        assert!(!path_matches(
            "crates/unet/src/gemm.rs",
            "crates/unet/src/conv.rs"
        ));
        assert!(path_matches("src/**", "src/bin/asura.rs"));
        assert!(!path_matches("src/**", "crates/core/src/sim.rs"));
        assert!(path_matches("**", "anything/at/all.rs"));
        assert!(path_matches("crates/*/src/lib.rs", "crates/sph/src/lib.rs"));
        assert!(!path_matches(
            "crates/*/src/lib.rs",
            "crates/sph/src/force.rs"
        ));
        assert!(path_matches("**/pool.rs", "vendor/rayon/src/pool.rs"));
    }

    #[test]
    fn cfg_test_spans_cover_mod_bodies() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn x() {}\n}\nfn after() {}\n";
        let model = FileModel::parse("a.rs".into(), src);
        assert!(!model.in_test_code(1));
        assert!(model.in_test_code(4));
        assert!(!model.in_test_code(6));
    }

    #[test]
    fn cfg_test_on_braceless_item_is_ignored() {
        let src = "#[cfg(test)]\nuse std::fs;\nfn f() { g(); }\n";
        let model = FileModel::parse("a.rs".into(), src);
        assert!(!model.in_test_code(3));
    }

    #[test]
    fn suppression_parsing_extracts_rule_and_reason() {
        let src = "// lint:allow(ordered-iteration): lookup-only map\nlet x = 1;\n";
        let model = FileModel::parse("a.rs".into(), src);
        assert_eq!(model.suppressions.len(), 1);
        assert_eq!(model.suppressions[0].rule, "ordered-iteration");
        assert_eq!(model.suppressions[0].reason, "lookup-only map");
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let files = vec![(
            "crates/core/src/sim.rs".to_string(),
            "// lint:allow(ordered-iteration)\nuse std::collections::HashMap;\n".to_string(),
        )];
        let report = run(&files);
        assert!(report.findings.iter().any(|f| f.rule == "lint-allow"));
    }

    #[test]
    fn suppression_with_reason_silences_next_code_line() {
        let files = vec![(
            "crates/core/src/sim.rs".to_string(),
            "// lint:allow(ordered-iteration): keyed lookup only, never iterated\n\
             use std::collections::HashMap;\n"
                .to_string(),
        )];
        let report = run(&files);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.suppressions[0].used);
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let files = vec![(
            "crates/core/src/sim.rs".to_string(),
            "// lint:allow(no-such-rule): because\nlet x = 1;\n".to_string(),
        )];
        let report = run(&files);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "lint-allow" && f.message.contains("unknown rule")));
    }
}
