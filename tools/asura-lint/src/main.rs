//! `asura-lint` — the workspace invariant checker.
//!
//! Usage:
//!   cargo run -p asura-lint -- --workspace       # lint the repo root
//!   cargo run -p asura-lint -- --root DIR        # lint an arbitrary tree
//!   cargo run -p asura-lint -- --list-rules      # print the rule catalog
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//!
//! The report is GitHub-flavored markdown so CI can tee it straight into
//! `$GITHUB_STEP_SUMMARY`.

#![forbid(unsafe_code)]

mod engine;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "bench-baselines", "node_modules"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => root = Some(workspace_root()),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root requires a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "--list-rules" => list_rules = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: asura-lint [--workspace | --root <dir>] [--list-rules]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if list_rules {
        print_rule_catalog();
        if root.is_none() {
            return ExitCode::SUCCESS;
        }
    }

    let Some(root) = root else {
        eprintln!("usage: asura-lint [--workspace | --root <dir>] [--list-rules]");
        return ExitCode::from(2);
    };

    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(&root, &root, &mut files) {
        eprintln!("error: walking {}: {e}", root.display());
        return ExitCode::from(2);
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let report = engine::run(&files);
    print!("{}", render_markdown(&report));
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: the linter lives at `<root>/tools/asura-lint`, so
/// two levels up from this crate's manifest dir. Falls back to `.` when
/// the binary is moved out of tree.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Recursively gather `.rs` files as (repo-relative `/`-separated path,
/// contents) pairs. The linter's own fixture trees are skipped — they are
/// violations *on purpose* and are exercised by the fixture test suite.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, String)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with("results") {
                continue;
            }
            let rel = rel_path(root, &path);
            if rel == "tools/asura-lint/tests" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&path)?;
            out.push((rel_path(root, &path), src));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn print_rule_catalog() {
    println!("# asura-lint rules\n");
    println!("| rule | scope | contract |");
    println!("|---|---|---|");
    for rule in rules::all_rules() {
        let scope = if rule.exclude.is_empty() {
            rule.include.join(", ")
        } else {
            format!(
                "{} (except {})",
                rule.include.join(", "),
                rule.exclude.join(", ")
            )
        };
        println!(
            "| `{}` | {} | {} |",
            rule.name,
            scope,
            collapse_ws(rule.description)
        );
    }
    println!();
}

fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn render_markdown(report: &engine::Report) -> String {
    let mut out = String::new();
    out.push_str("# asura-lint report\n\n");
    out.push_str(&format!(
        "{} file(s) scanned, {} finding(s), {} suppression(s) in force.\n\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressions.len()
    ));

    if report.findings.is_empty() {
        out.push_str("No violations. ✅\n");
    } else {
        out.push_str("| rule | location | finding |\n|---|---|---|\n");
        for f in &report.findings {
            out.push_str(&format!(
                "| `{}` | `{}:{}` | {} |\n",
                f.rule,
                f.path,
                f.line,
                collapse_ws(&f.message)
            ));
        }
    }

    if !report.suppressions.is_empty() {
        out.push_str("\n## Suppressions\n\n");
        out.push_str("| rule | location | used | reason |\n|---|---|---|---|\n");
        for s in &report.suppressions {
            out.push_str(&format!(
                "| `{}` | `{}:{}` | {} | {} |\n",
                s.rule,
                s.path,
                s.line,
                if s.used { "yes" } else { "no" },
                if s.reason.is_empty() {
                    "(missing)".to_string()
                } else {
                    collapse_ws(&s.reason)
                }
            ));
        }
    }
    out
}
