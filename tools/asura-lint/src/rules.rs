//! The rule catalog: each rule is a name, a path scope, and a token-level
//! check. The scopes encode *where the invariant lives* — the same token
//! that is a violation inside a kernel is fine in a bench harness — and
//! every scope is documented next to the contract it enforces (see
//! `## Static invariants & lint` in ROADMAP.md).

use crate::engine::{FileModel, Finding};
use crate::lexer::TokKind;

/// One lint rule.
pub struct Rule {
    pub name: &'static str,
    pub description: &'static str,
    /// Glob patterns (repo-relative, `/`-separated) the rule applies to.
    pub include: &'static [&'static str],
    /// Paths carved back out of `include` (the rule's allowed sites).
    pub exclude: &'static [&'static str],
    pub check: fn(&FileModel) -> Vec<Finding>,
}

/// The full rule set, in report order.
pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "atomic-io",
            description: "every persisted byte of run state goes through \
                          core::ckpt::atomic_write (tmp → fsync → rename); \
                          no std::fs::write / File::create outside core::ckpt",
            include: &["crates/core/src/**", "crates/mpisim/src/**", "src/**"],
            exclude: &["crates/core/src/ckpt.rs"],
            check: check_atomic_io,
        },
        Rule {
            name: "no-fma",
            description: "no mul_add / FMA intrinsics in the deterministic \
                          kernels — FMA contracts a rounding step and breaks \
                          the bitwise snapshot contract",
            include: &[
                "crates/gravity/**",
                "crates/sph/**",
                "crates/unet/src/gemm.rs",
            ],
            exclude: &[],
            check: check_no_fma,
        },
        Rule {
            name: "safety-comment",
            description: "every `unsafe` block, fn, or impl is preceded by a \
                          `// SAFETY:` comment stating the discharged proof \
                          obligation",
            include: &["**"],
            exclude: &[],
            check: check_safety_comment,
        },
        Rule {
            name: "no-panic-daemon",
            description: "no unwrap/expect/panic!/unreachable! in the serve \
                          daemon, supervisor, or protocol/fault parsers — \
                          malformed input must be a typed error, never a \
                          crashed fleet",
            include: &[
                "crates/core/src/serve.rs",
                "crates/core/src/supervise.rs",
                "crates/core/src/faults.rs",
            ],
            exclude: &[],
            check: check_no_panic,
        },
        Rule {
            name: "no-wallclock-determinism",
            description: "no Instant::now / SystemTime::now in the step loop, \
                          snapshot codecs, or kernels — timing belongs in the \
                          driver's phase-timer layer",
            include: &[
                "crates/core/src/sim.rs",
                "crates/core/src/dist.rs",
                "crates/core/src/snapshot.rs",
                "crates/core/src/ckpt.rs",
                "crates/core/src/scheduler.rs",
                "crates/gravity/src/**",
                "crates/sph/src/**",
                "crates/fdps/src/**",
                "crates/unet/src/**",
                "crates/surrogate/src/**",
            ],
            exclude: &[],
            check: check_no_wallclock,
        },
        Rule {
            name: "ordered-iteration",
            description: "no HashMap/HashSet in snapshot, manifest, or \
                          JSON-rendering paths — iteration order must not \
                          depend on the hasher (use BTreeMap/Vec, or suppress \
                          with a lookup-only reason)",
            include: &[
                "crates/core/src/sim.rs",
                "crates/core/src/dist.rs",
                "crates/core/src/snapshot.rs",
                "crates/core/src/ckpt.rs",
                "crates/core/src/diagnostics.rs",
                "crates/core/src/serve.rs",
                "crates/core/src/supervise.rs",
                "crates/unet/src/json.rs",
                "crates/surrogate/src/model.rs",
            ],
            exclude: &[],
            check: check_ordered_iteration,
        },
    ]
}

fn finding(rule: &'static str, model: &FileModel, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: model.path.clone(),
        line,
        message,
    }
}

/// `fs::write(…)` or `File::create(…)` — including `std::fs::write`.
fn check_atomic_io(model: &FileModel) -> Vec<Finding> {
    let toks = &model.lexed.tokens;
    let mut out = Vec::new();
    for i in 2..toks.len() {
        let qualified = |head: &str| {
            toks[i - 1].text == ":" && toks[i - 2].text == ":" && i >= 3 && {
                toks[i - 3].text == head
            }
        };
        if toks[i].text == "write" && qualified("fs") {
            out.push(finding(
                "atomic-io",
                model,
                toks[i].line,
                "`fs::write` bypasses the atomic tmp→fsync→rename discipline — \
                 route this through `core::ckpt::atomic_write`"
                    .into(),
            ));
        }
        if toks[i].text == "create" && qualified("File") {
            out.push(finding(
                "atomic-io",
                model,
                toks[i].line,
                "bare `File::create` can leave a half-written file under a \
                 committed name — route this through `core::ckpt::atomic_write`"
                    .into(),
            ));
        }
    }
    out
}

/// `mul_add` calls or any `*fmadd*` intrinsic identifier.
fn check_no_fma(model: &FileModel) -> Vec<Finding> {
    model
        .lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| t.text == "mul_add" || t.text.contains("fmadd"))
        .map(|t| {
            finding(
                "no-fma",
                model,
                t.line,
                format!(
                    "`{}` fuses a multiply-add into one rounding — the kernels' \
                     bitwise snapshot contract requires exactly-rounded ops only \
                     (see ROADMAP `## Kernel determinism`)",
                    t.text
                ),
            )
        })
        .collect()
}

/// Every `unsafe` token needs a `SAFETY:` comment on its own line or in
/// the contiguous comment/attribute block directly above it.
fn check_safety_comment(model: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &model.lexed.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if has_safety_comment(model, t.line) {
            continue;
        }
        out.push(finding(
            "safety-comment",
            model,
            t.line,
            "`unsafe` without a `// SAFETY:` comment — state the proof \
             obligation this site discharges on the line(s) above"
                .into(),
        ));
    }
    out
}

fn has_safety_comment(model: &FileModel, line: usize) -> bool {
    let contains = |l: usize| {
        model
            .lexed
            .comment_on(l)
            .is_some_and(|c| c.contains("SAFETY:"))
    };
    if contains(line) {
        return true;
    }
    // Walk up through the contiguous block of comment / attribute /
    // blank-prefix lines above the unsafe site.
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = model.line_text(l);
        let trimmed = text.trim_start();
        let is_comment = trimmed.starts_with("//") || trimmed.starts_with("/*") || contains(l);
        let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if is_comment {
            if contains(l) {
                return true;
            }
            continue;
        }
        if is_attr {
            continue;
        }
        break;
    }
    false
}

/// `.unwrap()` / `.expect(…)` method calls and panicking macros.
fn check_no_panic(model: &FileModel) -> Vec<Finding> {
    let toks = &model.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
        if (t.text == "unwrap" || t.text == "expect") && prev_dot {
            out.push(finding(
                "no-panic-daemon",
                model,
                t.line,
                format!(
                    "`.{}()` in a daemon/supervisor path — a malformed input or \
                     lost invariant must surface as a typed error, not kill the \
                     fleet",
                    t.text
                ),
            ));
        }
        if next_bang
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(finding(
                "no-panic-daemon",
                model,
                t.line,
                format!(
                    "`{}!` in a daemon/supervisor path — return an error",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `Instant::now` / `SystemTime::now` token triples.
fn check_no_wallclock(model: &FileModel) -> Vec<Finding> {
    let toks = &model.lexed.tokens;
    let mut out = Vec::new();
    for i in 3..toks.len() {
        if toks[i].text == "now"
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && (toks[i - 3].text == "Instant" || toks[i - 3].text == "SystemTime")
        {
            out.push(finding(
                "no-wallclock-determinism",
                model,
                toks[i].line,
                format!(
                    "`{}::now()` inside a deterministic path — wall-clock reads \
                     belong in the driver's phase-timer layer only",
                    toks[i - 3].text
                ),
            ));
        }
    }
    out
}

/// Any `HashMap` / `HashSet` identifier in an order-sensitive path.
fn check_ordered_iteration(model: &FileModel) -> Vec<Finding> {
    model
        .lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| t.text == "HashMap" || t.text == "HashSet")
        .map(|t| {
            finding(
                "ordered-iteration",
                model,
                t.line,
                format!(
                    "`{}` in a snapshot/manifest/JSON-rendering path — hasher \
                     iteration order can leak into persisted bytes; use \
                     BTreeMap/Vec, or suppress with a lookup-only reason",
                    t.text
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileModel;

    fn model(path: &str, src: &str) -> FileModel {
        FileModel::parse(path.to_string(), src)
    }

    #[test]
    fn atomic_io_catches_qualified_and_bare_forms() {
        let m = model(
            "crates/core/src/sim.rs",
            "fn f() { std::fs::write(p, b).unwrap(); let g = File::create(p); }",
        );
        let f = check_atomic_io(&m);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn atomic_io_ignores_unrelated_writes() {
        let m = model(
            "crates/core/src/sim.rs",
            "fn f(w: &mut dyn Write) { w.write(b).ok(); store.write_all(b); }",
        );
        assert!(check_atomic_io(&m).is_empty());
    }

    #[test]
    fn no_fma_catches_method_and_intrinsic() {
        let m = model(
            "crates/gravity/src/kernel.rs",
            "fn f(a: f64) -> f64 { let v = _mm256_fmadd_pd(x, y, z); a.mul_add(2.0, 1.0) }",
        );
        assert_eq!(check_no_fma(&m).len(), 2);
    }

    #[test]
    fn safety_comment_walks_over_attributes() {
        let src = "// SAFETY: feature checked by the dispatcher.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   pub unsafe fn body() {}\n";
        assert!(check_safety_comment(&model("a.rs", src)).is_empty());
    }

    #[test]
    fn safety_comment_missing_is_flagged() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        let f = check_safety_comment(&model("a.rs", src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_does_not_leak_across_code_lines() {
        // A SAFETY comment above *other code* must not cover a later
        // unsafe block.
        let src = "// SAFETY: covers only the next line.\n\
                   let a = 1;\n\
                   let x = unsafe { *p };\n";
        assert_eq!(check_safety_comment(&model("a.rs", src)).len(), 1);
    }

    #[test]
    fn no_panic_distinguishes_unwrap_or() {
        let m = model(
            "crates/core/src/serve.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.expect_err(\"e\"); }",
        );
        assert!(check_no_panic(&m).is_empty());
        let m = model(
            "crates/core/src/serve.rs",
            "fn f() { x.unwrap(); panic!(\"b\"); }",
        );
        assert_eq!(check_no_panic(&m).len(), 2);
    }

    #[test]
    fn wallclock_catches_both_clocks() {
        let m = model(
            "crates/core/src/sim.rs",
            "fn f() { let a = Instant::now(); let b = std::time::SystemTime::now(); }",
        );
        assert_eq!(check_no_wallclock(&m).len(), 2);
    }

    #[test]
    fn ordered_iteration_catches_both_collections() {
        let m = model(
            "crates/core/src/snapshot.rs",
            "use std::collections::{HashMap, HashSet};",
        );
        assert_eq!(check_ordered_iteration(&m).len(), 2);
    }
}
