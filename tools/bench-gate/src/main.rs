//! `bench-gate` — the CI bench-regression gate.
//!
//! The workspace's benches emit `BENCH_*.json` perf trajectories at the
//! repo root, and the checked-in copies double as the *baselines* of the
//! last merged PR. CI stashes those baselines before the bench step
//! overwrites them, then runs this gate to diff fresh results against
//! them:
//!
//! ```sh
//! bench-gate --baseline-dir bench-baselines --current-dir . --tolerance 0.30
//! ```
//!
//! Metrics fall into three classes, because CI runners are noisy:
//!
//! * **Gated ratios** — machine-independent quantities (speedup ratios,
//!   update savings, modeled efficiencies) measured *within* one run, so
//!   runner throttling cancels out. A gated metric regressing by more
//!   than `--tolerance` (default 30%) fails the job.
//! * **Counters** — deterministic per-run counts (tree refreshes vs
//!   rebuilds). Reported, and gated only in the *wrong direction* (e.g.
//!   reuse disappearing entirely would show up as a gated ratio anyway).
//! * **Informational** — absolute wall-clock and ns-per-iter numbers.
//!   Reported with their delta but never failing: a shared runner's
//!   absolute timings swing far more than any real regression they could
//!   catch (this repo has measured 2x run-to-run variance on idle
//!   containers with CPU shares).
//!
//! The gate prints one markdown table per file to the job log and exits
//! non-zero iff a gated metric regressed. A *missing baseline* for a file
//! is reported and passes (first run of a new bench); a missing *current*
//! file fails — that's a CI wiring error, not a perf result.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use unet::json::{parse_json, Json};

/// Which way "better" points for a metric.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Higher,
    Lower,
}

/// How a metric participates in the gate.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    /// Machine-independent ratio: regression beyond tolerance fails CI.
    Gated,
    /// Reported only; never fails.
    Info,
}

/// One tracked scalar inside a `BENCH_*.json` document.
struct Metric {
    /// Object path from the document root, e.g. `["block", "wall_s"]`.
    path: &'static [&'static str],
    direction: Direction,
    class: Class,
}

/// Tracked per-file metric specs. Files with a top-level `records` array
/// (the criterion-shim registry format) are handled generically instead:
/// every record's `ns_per_iter` is an informational lower-is-better row.
fn tracked(file: &str) -> &'static [Metric] {
    const BLOCKSTEP: &[Metric] = &[
        Metric {
            path: &["update_ratio"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["wall_speedup"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["modeled_block_efficiency"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["block", "tree_refreshes"],
            direction: Direction::Higher,
            class: Class::Info,
        },
        Metric {
            path: &["block", "tree_rebuilds"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["block", "sph_tree_refreshes"],
            direction: Direction::Higher,
            class: Class::Info,
        },
        Metric {
            path: &["block", "sph_tree_rebuilds"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["global", "wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["block", "wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
    ];
    const FORCE: &[Metric] = &[
        Metric {
            path: &["walk_speedup"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            // AoS-reference time over SoA time for the f64 monopole
            // kernel, measured within one run: machine-independent.
            path: &["simd_speedup"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["walk_indexed_parallel_lists_per_sec"],
            direction: Direction::Higher,
            class: Class::Info,
        },
        Metric {
            path: &["kernel_f64_ns_per_interaction"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["kernel_f64_soa_ns_per_interaction"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["kernel_mixed_ns_per_interaction"],
            direction: Direction::Lower,
            class: Class::Info,
        },
    ];
    const UNET_INFER: &[Metric] = &[Metric {
        // Scalar-reference conv time over im2col+GEMM time on the same
        // net and input — the achieved-GFLOPs ratio of the production
        // forward. Within-run ratio, so runner speed cancels.
        path: &["conv_gflops_ratio"],
        direction: Direction::Higher,
        class: Class::Gated,
    }];
    const TREE_WALK: &[Metric] = &[Metric {
        // Tree walks per smoothing-length iteration across a density
        // pass with a mediocre initial guess: 1.0 without the candidate
        // cache, < 1.0 when re-filtering works. Deterministic count.
        path: &["h_iter_walk_ratio"],
        direction: Direction::Lower,
        class: Class::Gated,
    }];
    const DIST_BLOCKSTEP: &[Metric] = &[
        Metric {
            // Deterministic update economy of the distributed active-set
            // walk vs a lockstep walk at the same schedule depth.
            path: &["update_ratio"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["block_sync_share"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["block", "substeps"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["block", "tree_refreshes"],
            direction: Direction::Higher,
            class: Class::Info,
        },
        Metric {
            path: &["block", "tree_rebuilds"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["global", "wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["block", "wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
    ];
    const SERVE: &[Metric] = &[
        Metric {
            // Serial-fleet wall over concurrent-fleet wall, measured
            // within one bench run: ~1.0 on a single core (only run I/O
            // overlaps), higher with more cores. Gated because a daemon
            // that serializes workers behind a lock or re-runs work drags
            // it well below its own machine's baseline.
            path: &["overlap_speedup"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            path: &["serial_wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["concurrent_wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
    ];
    const SURROGATE: &[Metric] = &[
        Metric {
            // Conventional-twin wall over surrogate wall for the same
            // physical interval, measured within one bench invocation so
            // runner speed cancels. The surrogate skipping the post-SN
            // CFL collapse is the paper's headline claim — this must stay
            // above 1.
            path: &["surrogate_speedup"],
            direction: Direction::Higher,
            class: Class::Gated,
        },
        Metric {
            // Surrogate energy-budget error over the conventional one.
            // Both runs are bitwise deterministic, so this ratio is
            // exactly reproducible — it bounds the fidelity cost of the
            // speedup.
            path: &["energy_err_ratio"],
            direction: Direction::Lower,
            class: Class::Gated,
        },
        Metric {
            path: &["train_wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["surrogate_wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["conventional_wall_s"],
            direction: Direction::Lower,
            class: Class::Info,
        },
        Metric {
            path: &["conventional_steps"],
            direction: Direction::Higher,
            class: Class::Info,
        },
    ];
    match file {
        "BENCH_blockstep.json" => BLOCKSTEP,
        "BENCH_dist_blockstep.json" => DIST_BLOCKSTEP,
        "BENCH_force.json" => FORCE,
        "BENCH_unet_infer.json" => UNET_INFER,
        "BENCH_tree_walk.json" => TREE_WALK,
        "BENCH_serve.json" => SERVE,
        "BENCH_surrogate.json" => SURROGATE,
        _ => &[],
    }
}

/// Outcome of one metric comparison.
struct Row {
    name: String,
    baseline: Option<f64>,
    current: Option<f64>,
    /// Relative change in the *worse* direction (positive = regressed).
    regression: Option<f64>,
    gated: bool,
}

impl Row {
    fn status(&self, tolerance: f64) -> &'static str {
        match (self.baseline, self.current, self.regression) {
            (None, Some(_), _) => "new",
            (Some(_), None, _) => "MISSING",
            (Some(_), Some(_), Some(r)) if self.gated && r > tolerance => "REGRESSED",
            (Some(_), Some(_), Some(r)) if r > tolerance => "info (worse)",
            (Some(_), Some(_), _) if self.gated => "ok",
            _ => "info",
        }
    }

    fn failed(&self, tolerance: f64) -> bool {
        if !self.gated {
            return false;
        }
        match (self.baseline, self.current) {
            // A gated metric that vanished from the fresh output is the
            // likeliest silent-bypass accident (renamed/dropped field):
            // treat it as a failure, not a shrug.
            (Some(_), None) => true,
            (Some(_), Some(_)) => self.regression.is_some_and(|r| r > tolerance),
            _ => false,
        }
    }
}

/// Relative regression of `current` vs `baseline` given the direction:
/// positive means worse, negative means improved.
fn regression(baseline: f64, current: f64, direction: Direction) -> Option<f64> {
    if !baseline.is_finite() || !current.is_finite() || baseline == 0.0 {
        return None;
    }
    let rel = (current - baseline) / baseline.abs();
    Some(match direction {
        Direction::Higher => -rel,
        Direction::Lower => rel,
    })
}

/// Walk an object path; `None` when any hop is missing or non-numeric.
fn lookup(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut v = doc;
    for key in path {
        v = v.get(key).ok()?;
    }
    match v {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

/// `records`-format documents: `name -> ns_per_iter`.
fn record_map(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Ok(Json::Arr(records)) = doc.get("records") {
        for r in records {
            if let (Ok(Json::Str(name)), Ok(Json::Num(ns))) = (r.get("name"), r.get("ns_per_iter"))
            {
                out.push((name.clone(), *ns));
            }
        }
    }
    out
}

/// Compare one bench file; returns the rendered rows.
fn compare_file(file: &str, baseline: Option<&Json>, current: &Json) -> Vec<Row> {
    let mut rows = Vec::new();
    for m in tracked(file) {
        let name = m.path.join(".");
        let b = baseline.and_then(|d| lookup(d, m.path));
        let c = lookup(current, m.path);
        let reg = match (b, c) {
            (Some(b), Some(c)) => regression(b, c, m.direction),
            _ => None,
        };
        rows.push(Row {
            name,
            baseline: b,
            current: c,
            regression: reg,
            gated: m.class == Class::Gated,
        });
    }
    // Generic records-format handling (tree_walk, alltoall, unet_infer):
    // informational ns-per-iter rows keyed by record name.
    let current_records = record_map(current);
    if !current_records.is_empty() {
        let baseline_records = baseline.map(record_map).unwrap_or_default();
        for (name, c) in current_records {
            let b = baseline_records
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v);
            let reg = b.and_then(|b| regression(b, c, Direction::Lower));
            rows.push(Row {
                name: format!("{name} (ns/iter)"),
                baseline: b,
                current: Some(c),
                regression: reg,
                gated: false,
            });
        }
    }
    rows
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "—".into(),
        Some(0.0) => "0".into(),
        Some(v) if v.abs() >= 1e6 || v.abs() < 1e-3 => format!("{v:.4e}"),
        Some(v) => format!("{v:.4}"),
    }
}

fn fmt_delta(r: Option<f64>) -> String {
    match r {
        None => "—".into(),
        // `regression` is positive-when-worse; label the direction plainly
        // instead of leaving the reader to remember each metric's sign.
        Some(r) if r.abs() < 5e-4 => "±0.0%".into(),
        Some(r) if r > 0.0 => format!("{:.1}% worse", r * 100.0),
        Some(r) => format!("{:.1}% better", -r * 100.0),
    }
}

/// Render one file's comparison as a markdown table into `out`.
fn render(file: &str, rows: &[Row], tolerance: f64, out: &mut String) {
    use std::fmt::Write;
    writeln!(out, "\n### {file}\n").unwrap();
    writeln!(out, "| metric | baseline | current | change | status |").unwrap();
    writeln!(out, "|---|---:|---:|---:|---|").unwrap();
    for r in rows {
        writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            r.name,
            fmt_value(r.baseline),
            fmt_value(r.current),
            fmt_delta(r.regression),
            r.status(tolerance),
        )
        .unwrap();
    }
}

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    tolerance: f64,
    files: Vec<String>,
}

const DEFAULT_FILES: &[&str] = &[
    "BENCH_force.json",
    "BENCH_blockstep.json",
    "BENCH_dist_blockstep.json",
    "BENCH_tree_walk.json",
    "BENCH_alltoall.json",
    "BENCH_unet_infer.json",
    "BENCH_serve.json",
    "BENCH_surrogate.json",
];

const USAGE: &str = "\
bench-gate — diff fresh BENCH_*.json against checked-in baselines

USAGE:
    bench-gate [--baseline-dir <dir>] [--current-dir <dir>]
               [--tolerance <frac>] [--files <a.json,b.json,...>]

Exits non-zero iff a gated (machine-independent) metric regressed by more
than the tolerance (default 0.30). Absolute timings are reported but never
gate. A missing baseline passes (new bench); a missing current file fails.
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        baseline_dir: PathBuf::from("bench-baselines"),
        current_dir: PathBuf::from("."),
        tolerance: 0.30,
        files: DEFAULT_FILES.iter().map(|s| s.to_string()).collect(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--baseline-dir" => args.baseline_dir = PathBuf::from(value("--baseline-dir")?),
            "--current-dir" => args.current_dir = PathBuf::from(value("--current-dir")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(0.0..10.0).contains(&args.tolerance) {
                    return Err("--tolerance must be a fraction in [0, 10)".into());
                }
            }
            "--files" => {
                args.files = value("--files")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn load(path: &Path) -> Result<Option<Json>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_json(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv).map_err(|e| {
        if e.is_empty() {
            String::new()
        } else {
            format!("usage: {e}")
        }
    })?;

    let mut report = String::from("## Bench regression gate\n");
    let mut failures: Vec<String> = Vec::new();
    for file in &args.files {
        let current = load(&args.current_dir.join(file))?;
        let baseline = load(&args.baseline_dir.join(file))?;
        let Some(current) = current else {
            failures.push(format!(
                "{file}: no fresh result under {} — did the bench step run?",
                args.current_dir.display()
            ));
            continue;
        };
        if baseline.is_none() {
            report.push_str(&format!(
                "\n### {file}\n\nno checked-in baseline — first run, passing.\n"
            ));
        }
        let rows = compare_file(file, baseline.as_ref(), &current);
        render(file, &rows, args.tolerance, &mut report);
        for r in &rows {
            if r.failed(args.tolerance) {
                failures.push(if r.current.is_none() {
                    format!(
                        "{file}: gated metric {} disappeared from the fresh output \
                         (baseline {})",
                        r.name,
                        fmt_value(r.baseline),
                    )
                } else {
                    format!(
                        "{file}: {} regressed {:.1}% (baseline {}, current {}, tolerance {:.0}%)",
                        r.name,
                        r.regression.unwrap_or(0.0) * 100.0,
                        fmt_value(r.baseline),
                        fmt_value(r.current),
                        args.tolerance * 100.0,
                    )
                });
            }
        }
    }
    println!("{report}");
    if failures.is_empty() {
        println!(
            "\nbench-gate: all gated metrics within {:.0}% of baseline",
            args.tolerance * 100.0
        );
        Ok(true)
    } else {
        eprintln!("\nbench-gate: FAILED");
        for f in &failures {
            eprintln!("  ✗ {f}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) if e.is_empty() || e.starts_with("usage:") => {
            if !e.is_empty() {
                eprintln!("{e}\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        parse_json(text).expect("test doc parses")
    }

    #[test]
    fn regression_signs_follow_direction() {
        // Higher-is-better dropping 50% is a +0.5 regression.
        assert!((regression(2.0, 1.0, Direction::Higher).unwrap() - 0.5).abs() < 1e-12);
        // Higher-is-better improving reads negative.
        assert!(regression(2.0, 3.0, Direction::Higher).unwrap() < 0.0);
        // Lower-is-better growing 50% is a +0.5 regression.
        assert!((regression(2.0, 3.0, Direction::Lower).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(regression(0.0, 1.0, Direction::Lower), None);
    }

    #[test]
    fn gated_metric_beyond_tolerance_fails() {
        let base = doc(r#"{"update_ratio": 6.0, "wall_speedup": 3.0}"#);
        let worse = doc(r#"{"update_ratio": 6.0, "wall_speedup": 1.8}"#);
        let rows = compare_file("BENCH_blockstep.json", Some(&base), &worse);
        let speedup = rows.iter().find(|r| r.name == "wall_speedup").unwrap();
        assert!(speedup.failed(0.30), "40% drop must fail at 30% tolerance");
        assert!(!speedup.failed(0.50), "but pass at 50% tolerance");
        let ratio = rows.iter().find(|r| r.name == "update_ratio").unwrap();
        assert!(!ratio.failed(0.30), "unchanged metric passes");
    }

    #[test]
    fn gated_metric_missing_from_fresh_output_fails() {
        let base = doc(r#"{"update_ratio": 6.0, "wall_speedup": 3.0}"#);
        let renamed = doc(r#"{"update_ratio": 6.0, "wallclock_speedup": 3.0}"#);
        let rows = compare_file("BENCH_blockstep.json", Some(&base), &renamed);
        let speedup = rows.iter().find(|r| r.name == "wall_speedup").unwrap();
        assert_eq!(speedup.current, None);
        assert_eq!(speedup.status(0.3), "MISSING");
        assert!(
            speedup.failed(0.3),
            "a vanished gated metric must fail the gate, not bypass it"
        );
    }

    #[test]
    fn informational_metrics_never_fail() {
        let base = doc(r#"{"global": {"wall_s": 1.0}, "update_ratio": 6.0}"#);
        let worse = doc(r#"{"global": {"wall_s": 100.0}, "update_ratio": 6.0}"#);
        let rows = compare_file("BENCH_blockstep.json", Some(&base), &worse);
        let wall = rows.iter().find(|r| r.name == "global.wall_s").unwrap();
        assert!(wall.regression.unwrap() > 10.0, "huge slowdown measured");
        assert!(!wall.failed(0.30), "...but absolute timings never gate");
    }

    #[test]
    fn records_format_is_compared_by_name() {
        let base = doc(
            r#"{"records": [{"name": "a/1", "ns_per_iter": 100.0, "iters": 5},
                            {"name": "b/2", "ns_per_iter": 200.0, "iters": 5}]}"#,
        );
        let cur = doc(
            r#"{"records": [{"name": "a/1", "ns_per_iter": 150.0, "iters": 5},
                            {"name": "c/3", "ns_per_iter": 50.0, "iters": 5}]}"#,
        );
        let rows = compare_file("BENCH_tree_walk.json", Some(&base), &cur);
        let a = rows.iter().find(|r| r.name.starts_with("a/1")).unwrap();
        assert!((a.regression.unwrap() - 0.5).abs() < 1e-12);
        assert!(!a.failed(0.01), "records are informational");
        let c = rows.iter().find(|r| r.name.starts_with("c/3")).unwrap();
        assert_eq!(c.baseline, None);
        assert_eq!(c.status(0.3), "new");
    }

    #[test]
    fn dist_blockstep_gates_only_the_update_ratio() {
        let base = doc(r#"{"update_ratio": 8.0, "block_sync_share": 0.1,
                "block": {"wall_s": 1.0, "substeps": 128}}"#);
        let worse = doc(r#"{"update_ratio": 4.0, "block_sync_share": 0.9,
                "block": {"wall_s": 50.0, "substeps": 512}}"#);
        let rows = compare_file("BENCH_dist_blockstep.json", Some(&base), &worse);
        let ratio = rows.iter().find(|r| r.name == "update_ratio").unwrap();
        assert!(ratio.failed(0.30), "halved update economy must gate");
        for name in ["block_sync_share", "block.wall_s", "block.substeps"] {
            let row = rows.iter().find(|r| r.name == name).unwrap();
            assert!(!row.failed(0.30), "{name} is informational");
        }
    }

    #[test]
    fn simd_speedup_regression_gates_force_file() {
        let base = doc(r#"{"walk_speedup": 3.0, "simd_speedup": 2.0,
                "kernel_f64_soa_ns_per_interaction": 2.5}"#);
        let worse = doc(r#"{"walk_speedup": 3.0, "simd_speedup": 1.0,
                "kernel_f64_soa_ns_per_interaction": 9.0}"#);
        let rows = compare_file("BENCH_force.json", Some(&base), &worse);
        let simd = rows.iter().find(|r| r.name == "simd_speedup").unwrap();
        assert!(simd.failed(0.30), "halved simd speedup must gate");
        let ns = rows
            .iter()
            .find(|r| r.name == "kernel_f64_soa_ns_per_interaction")
            .unwrap();
        assert!(
            !ns.failed(0.30),
            "absolute kernel timing stays informational"
        );
    }

    #[test]
    fn unet_conv_ratio_and_records_coexist() {
        // unet_infer carries both a gated top-level scalar and the generic
        // informational records array.
        let base = doc(
            r#"{"records": [{"name": "f/16", "ns_per_iter": 10.0, "iters": 3}],
                "conv_gflops_ratio": 30.0}"#,
        );
        let worse = doc(
            r#"{"records": [{"name": "f/16", "ns_per_iter": 80.0, "iters": 3}],
                "conv_gflops_ratio": 4.0}"#,
        );
        let rows = compare_file("BENCH_unet_infer.json", Some(&base), &worse);
        let ratio = rows.iter().find(|r| r.name == "conv_gflops_ratio").unwrap();
        assert!(ratio.failed(0.30), "collapsed conv throughput must gate");
        let rec = rows.iter().find(|r| r.name.starts_with("f/16")).unwrap();
        assert!(!rec.failed(0.30), "records stay informational");
    }

    #[test]
    fn h_iter_walk_ratio_gates_lower_is_better() {
        let base = doc(r#"{"h_iter_walk_ratio": 0.5}"#);
        let worse = doc(r#"{"h_iter_walk_ratio": 1.0}"#);
        let better = doc(r#"{"h_iter_walk_ratio": 0.34}"#);
        let rows = compare_file("BENCH_tree_walk.json", Some(&base), &worse);
        let r = rows.iter().find(|r| r.name == "h_iter_walk_ratio").unwrap();
        assert!(r.failed(0.30), "walks-per-iteration doubling must gate");
        let rows = compare_file("BENCH_tree_walk.json", Some(&base), &better);
        let r = rows.iter().find(|r| r.name == "h_iter_walk_ratio").unwrap();
        assert!(!r.failed(0.30), "fewer walks per iteration passes");
    }

    #[test]
    fn serve_overlap_gates_but_fleet_wall_times_stay_informational() {
        let base = doc(r#"{"overlap_speedup": 1.0, "serial_wall_s": 1.5,
                "concurrent_wall_s": 1.5}"#);
        let worse = doc(r#"{"overlap_speedup": 0.5, "serial_wall_s": 9.0,
                "concurrent_wall_s": 18.0}"#);
        let rows = compare_file("BENCH_serve.json", Some(&base), &worse);
        let overlap = rows.iter().find(|r| r.name == "overlap_speedup").unwrap();
        assert!(overlap.failed(0.30), "halved fleet overlap must gate");
        for name in ["serial_wall_s", "concurrent_wall_s"] {
            let row = rows.iter().find(|r| r.name == name).unwrap();
            assert!(!row.failed(0.30), "{name} is informational");
        }
    }

    #[test]
    fn surrogate_loop_gates_speedup_and_energy_ratio_but_not_walls() {
        let base = doc(r#"{"surrogate_speedup": 3.0, "energy_err_ratio": 76.0,
                "train_wall_s": 4.0, "surrogate_wall_s": 0.1,
                "conventional_wall_s": 0.4, "conventional_steps": 28}"#);
        let worse = doc(r#"{"surrogate_speedup": 1.2, "energy_err_ratio": 500.0,
                "train_wall_s": 40.0, "surrogate_wall_s": 1.0,
                "conventional_wall_s": 4.0, "conventional_steps": 28}"#);
        let rows = compare_file("BENCH_surrogate.json", Some(&base), &worse);
        let speedup = rows.iter().find(|r| r.name == "surrogate_speedup").unwrap();
        assert!(
            speedup.failed(0.30),
            "collapsed surrogate speedup must gate"
        );
        let ratio = rows.iter().find(|r| r.name == "energy_err_ratio").unwrap();
        assert!(ratio.failed(0.30), "fidelity-cost blowup must gate");
        for name in ["train_wall_s", "surrogate_wall_s", "conventional_wall_s"] {
            let row = rows.iter().find(|r| r.name == name).unwrap();
            assert!(!row.failed(0.30), "{name} is informational");
        }
    }

    #[test]
    fn missing_baseline_passes_and_renders() {
        let cur = doc(r#"{"update_ratio": 6.0, "wall_speedup": 3.0}"#);
        let rows = compare_file("BENCH_blockstep.json", None, &cur);
        assert!(rows.iter().all(|r| !r.failed(0.0)), "no baseline, no fail");
        let mut out = String::new();
        render("BENCH_blockstep.json", &rows, 0.3, &mut out);
        assert!(out.contains("| update_ratio |"));
        assert!(out.contains("| new |"));
    }
}
