//! The persistent worker-pool runtime behind the shim's parallel
//! executors.
//!
//! The first shim generation spawned scoped OS threads
//! (`std::thread::scope`) on *every* parallel call. That was correct but
//! charged a full thread spawn + join (~100 µs each on this class of
//! hardware) per call — fatal once hierarchical block timesteps made the
//! hot path thousands of *tiny* active-set force evaluations per base
//! step. This module replaces it with a classic persistent pool:
//!
//! * **Lazily-initialized global pool**: the first parallel call spawns
//!   `current_num_threads() - 1` detached worker threads (the submitting
//!   thread always participates as the remaining worker) that live for the
//!   process lifetime, parked on a condvar between jobs.
//! * **Broadcast jobs**: a job is one type-erased `&(dyn Fn() + Sync)`
//!   body. `broadcast` publishes it under the pool lock, wakes the
//!   workers, runs the body on the calling thread too, then retires the
//!   job. Chunk distribution stays in the executors (`execute_chunks` in
//!   the crate root): the body loops on an atomic chunk counter, so every
//!   participating thread — caller included — pulls chunks until the
//!   queue drains, exactly the oversubscribed load-balancing scheme the
//!   scoped-thread version used.
//! * **One job at a time**: a process-wide submit lock serializes
//!   top-level parallel regions. Concurrent submitters (e.g. `mpisim`
//!   rank threads) queue up; each still gets the whole pool.
//! * **Nested calls run inline**: a parallel call made from inside a pool
//!   worker, or from a body already executing on the submitting thread,
//!   runs sequentially on the calling thread. This keeps nesting
//!   deadlock-free (a worker can never block waiting for pool capacity it
//!   is itself occupying) at the cost of serialized inner loops — the
//!   force pipeline only nests trivially, so the outer region already
//!   saturates the machine.
//!
//! # Safety protocol
//!
//! The job body is a borrow of the submitter's stack frame, promoted to
//! `'static` for the worker channel. The protocol that keeps this sound:
//! workers take the body pointer only under the pool lock while the job
//! slot is occupied and increment `running` in the same critical section;
//! `broadcast` clears the slot and then blocks until `running` drains to
//! zero before returning (or unwinding). A worker that wakes late finds
//! the slot empty and goes back to sleep — it can never observe a dangling
//! body.
//!
//! Worker panics are caught per-invocation (the worker thread survives),
//! recorded on the job, and re-raised on the submitting thread as
//! `"parallel worker panicked"`, matching the scoped-thread shim's
//! behaviour.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex, OnceLock};

/// Type-erased job body with the submitter-stack lifetime erased; see the
/// module docs for the protocol that makes dereferencing it sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the retire protocol bounds its lifetime; the raw pointer is only a
// channel between the submitter and the workers.
unsafe impl Send for JobPtr {}

/// Pool state guarded by one mutex.
struct State {
    /// Monotone submission counter: a worker joins each published job at
    /// most once, even across spurious wakeups.
    epoch: u64,
    /// The body of the in-flight job; `None` between jobs, so late-waking
    /// workers cannot join a retired job.
    job: Option<JobPtr>,
    /// Workers currently executing the body.
    running: usize,
    /// Some worker invocation of the current job panicked.
    panicked: bool,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here while joined workers finish.
    done: Condvar,
    /// Number of pool worker threads (the submitter participates too, so
    /// total parallelism is `helpers + 1`).
    helpers: usize,
}

/// Serializes top-level parallel regions: held by the submitting thread
/// for the whole job.
static SUBMIT: Mutex<()> = Mutex::new(());
static POOL: OnceLock<&'static Pool> = OnceLock::new();

thread_local! {
    /// Set once on pool worker threads.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Set on any thread while it is inside a `broadcast` body.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// True when a parallel call must run inline on the calling thread: on a
/// pool worker, or nested inside an in-flight parallel region on the
/// submitting thread (either would deadlock against the one-job-at-a-time
/// pool).
pub(crate) fn must_run_inline() -> bool {
    IS_POOL_WORKER.with(Cell::get) || IN_PARALLEL.with(Cell::get)
}

/// The process-wide pool, spawning its workers on first use.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let helpers = crate::current_num_threads().saturating_sub(1);
        let p: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                running: 0,
                panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            helpers,
        }));
        for i in 0..helpers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(p))
                .expect("spawn pool worker");
        }
        p
    })
}

fn worker_loop(pool: &'static Pool) {
    IS_POOL_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool state");
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(j) = st.job {
                        st.running += 1;
                        break j;
                    }
                }
                st = pool.work.wait(st).expect("pool state");
            }
        };
        // SAFETY: the pointer was taken under the lock while the job slot
        // was occupied and `running` was incremented; the submitter keeps
        // the body alive until `running` returns to zero.
        let body = unsafe { &*job.0 };
        let ok = std::panic::catch_unwind(AssertUnwindSafe(body)).is_ok();
        let mut st = pool.state.lock().expect("pool state");
        st.running -= 1;
        if !ok {
            st.panicked = true;
        }
        if st.running == 0 {
            pool.done.notify_all();
        }
    }
}

/// Run `body` on every pool worker concurrently with the calling thread,
/// returning once all participants are done. The body must distribute its
/// own work (atomic chunk counter / work queue); extra invocations that
/// find nothing to do simply return.
///
/// Panics with `"parallel worker panicked"` if any worker invocation
/// panicked (the caller's own panic, if any, is resumed verbatim).
pub(crate) fn broadcast(body: &(dyn Fn() + Sync)) {
    let pool = pool();
    if pool.helpers == 0 {
        // Single-core machine: no workers to coordinate with, but the body
        // is still a parallel region — nested calls must run inline and
        // `must_run_inline()` must hold, exactly as on the multi-core path.
        IN_PARALLEL.with(|f| f.set(true));
        let caller = std::panic::catch_unwind(AssertUnwindSafe(body));
        IN_PARALLEL.with(|f| f.set(false));
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        return;
    }
    // A previous region that propagated a panic poisons this lock while
    // holding no broken invariants (the retire step below always runs
    // before unwinding), so poisoning is recovered, not propagated.
    let _submit = SUBMIT.lock().unwrap_or_else(|e| e.into_inner());
    // Publish the job and wake the workers.
    {
        let mut st = pool.state.lock().expect("pool state");
        debug_assert!(st.job.is_none() && st.running == 0, "job overlap");
        st.epoch = st.epoch.wrapping_add(1);
        // SAFETY: promotes the body borrow to `'static` for the worker
        // channel; the retire step below outlives every dereference.
        st.job = Some(JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body)
        }));
        st.panicked = false;
        pool.work.notify_all();
    }
    // Participate from the calling thread; nested parallel calls made by
    // the body run inline rather than re-entering the pool.
    IN_PARALLEL.with(|f| f.set(true));
    let caller = std::panic::catch_unwind(AssertUnwindSafe(body));
    IN_PARALLEL.with(|f| f.set(false));
    // Retire: close the slot to new joins, then wait out joined workers.
    let worker_panicked = {
        let mut st = pool.state.lock().expect("pool state");
        st.job = None;
        while st.running > 0 {
            st = pool.done.wait(st).expect("pool state");
        }
        st.panicked
    };
    if let Err(payload) = caller {
        std::panic::resume_unwind(payload);
    }
    if worker_panicked {
        panic!("parallel worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_on_caller_and_workers() {
        let calls = AtomicUsize::new(0);
        broadcast(&|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        let n = calls.load(Ordering::Relaxed);
        // At least the caller ran it; at most caller + every helper.
        assert!(n >= 1 && n <= pool().helpers + 1, "{n} invocations");
    }

    #[test]
    fn sequential_broadcasts_reuse_the_pool() {
        for round in 0..100 {
            let sum = AtomicUsize::new(0);
            let next = AtomicUsize::new(0);
            broadcast(&|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 1000 {
                    break;
                }
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2, "round {round}");
        }
    }

    #[test]
    fn worker_threads_report_inline_mode() {
        // From inside a body, every participant must see must_run_inline()
        // (caller via IN_PARALLEL, workers via IS_POOL_WORKER).
        let violations = AtomicUsize::new(0);
        broadcast(&|| {
            if !must_run_inline() {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        assert!(!must_run_inline(), "flag must clear after the region");
    }
}
