//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! reimplements the slice of rayon the workspace uses — `par_iter`,
//! `into_par_iter` on ranges, `map`, `map_init`, `collect`,
//! `par_chunks_mut(..).enumerate().for_each(..)` — with *real* parallelism:
//! work is split into contiguous index chunks that a **persistent pool of
//! parked worker threads** (see [`pool`]) pulls from an atomic queue, and
//! results are concatenated in chunk order, so outputs are bit-identical
//! to the sequential evaluation.
//!
//! The pool is spawned lazily on the first parallel call and lives for
//! the process: a parallel region costs a couple of condvar wakeups
//! instead of the thread spawn + join per call the first-generation
//! scoped-thread shim paid. That difference is invisible on big
//! full-system evaluations and decisive on the block-timestep substep
//! path, where thousands of tiny active-set regions run per base step.
//!
//! `map_init` keeps one state value per worker chunk, exactly the per-thread
//! scratch-reuse semantics the force pipeline relies on (rayon initializes
//! per split; here a split is a worker's whole chunk, so reuse is at least
//! as good).
//!
//! Small inputs (< [`MIN_PARALLEL_LEN`] items) run inline on the calling
//! thread: even pool wakeup latency would dominate, and tests with a
//! handful of particles stay deterministic under debuggers. Nested
//! parallel calls (from a worker, or from the submitting thread's own
//! body) also run inline — see the [`pool`] module docs for the
//! deadlock-freedom argument.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod pool;

use std::ops::Range;

/// Below this many items the pipeline runs inline on the caller.
pub const MIN_PARALLEL_LEN: usize = 64;

/// Number of workers used for parallel execution.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A data-parallel pipeline over `par_len` indexed items.
///
/// `drive` streams the items of an index sub-range into a sink; executors
/// split the full range into per-worker chunks and drive each chunk on its
/// own scoped thread.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Total number of items.
    fn par_len(&self) -> usize;

    /// Produce items for indices `start..end`, in order, into `sink`.
    fn drive(&self, start: usize, end: usize, sink: &mut dyn FnMut(Self::Item));

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { inner: self, f }
    }

    /// Like rayon's `map_init`: `init` runs once per worker chunk and the
    /// state is threaded through every call of `f` in that chunk.
    fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            inner: self,
            init,
            f,
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        execute_chunks(&self, |me, start, end| {
            me.drive(start, end, &mut |item| f(item));
            Vec::<()>::new()
        });
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Split `0..par_len` into contiguous chunks (oversubscribed ~8x the
/// worker count so uneven per-item costs balance), have the persistent
/// pool's workers and the calling thread pull chunks from an atomic
/// queue, and return the per-chunk outputs in chunk order.
fn execute_chunks<P, T, F>(pipeline: &P, body: F) -> Vec<Vec<T>>
where
    P: ParallelIterator,
    T: Send,
    F: Fn(&P, usize, usize) -> Vec<T> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = pipeline.par_len();
    let workers = current_num_threads();
    if n < MIN_PARALLEL_LEN || workers <= 1 || pool::must_run_inline() {
        return vec![body(pipeline, 0, n)];
    }
    let chunk = n.div_ceil(workers * 8).max(MIN_PARALLEL_LEN / 4);
    let n_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    pool::broadcast(&|| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let start = c * chunk;
        let end = ((c + 1) * chunk).min(n);
        let out = body(pipeline, start, end);
        collected.lock().expect("collector lock").push((c, out));
    });
    let mut parts = collected.into_inner().expect("collector lock");
    parts.sort_unstable_by_key(|&(c, _)| c);
    parts.into_iter().map(|(_, v)| v).collect()
}

/// Types constructible from a parallel pipeline (only `Vec` is needed).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(pipeline: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(pipeline: P) -> Self {
        let parts = execute_chunks(&pipeline, |me, start, end| {
            let mut out = Vec::with_capacity(end - start);
            me.drive(start, end, &mut |item| out.push(item));
            out
        });
        let mut all = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            all.extend(p);
        }
        all
    }
}

/// `map` adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, start: usize, end: usize, sink: &mut dyn FnMut(R)) {
        self.inner
            .drive(start, end, &mut |item| sink((self.f)(item)));
    }
}

/// `map_init` adapter: per-chunk mutable state.
pub struct MapInit<P, INIT, F> {
    inner: P,
    init: INIT,
    f: F,
}

impl<P, INIT, S, F, R> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, start: usize, end: usize, sink: &mut dyn FnMut(R)) {
        let mut state = (self.init)();
        self.inner
            .drive(start, end, &mut |item| sink((self.f)(&mut state, item)));
    }
}

/// Conversion into a parallel pipeline by value.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel pipeline over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.end - self.start
    }

    fn drive(&self, start: usize, end: usize, sink: &mut dyn FnMut(usize)) {
        for i in self.start + start..self.start + end {
            sink(i);
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel pipeline over shared slice elements.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn drive(&self, start: usize, end: usize, sink: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[start..end] {
            sink(item);
        }
    }
}

/// `par_iter` on slices (and `Vec` through deref).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// `par_chunks_mut` on mutable slices (and `Vec` through deref).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Disjoint mutable chunks of one slice, processed in parallel.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut {
            chunks: self.chunks,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// `enumerate()` over mutable chunks.
pub struct EnumeratedChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumeratedChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let total: usize = self.chunks.iter().map(|c| c.len()).sum();
        let n = self.chunks.len();
        let workers = current_num_threads();
        if total < MIN_PARALLEL_LEN || workers <= 1 || n <= 1 || pool::must_run_inline() {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Pool workers and the caller pull enumerated chunks from a shared
        // queue so uneven per-chunk costs balance.
        use std::sync::Mutex;
        let queue: Mutex<Vec<(usize, &'a mut [T])>> =
            Mutex::new(self.chunks.into_iter().enumerate().rev().collect());
        pool::broadcast(&|| loop {
            let item = queue.lock().expect("chunk queue").pop();
            match item {
                Some(it) => f(it),
                None => break,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), v.len());
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, 2 * i);
        }
    }

    #[test]
    fn range_into_par_iter_matches_serial() {
        let out: Vec<usize> = (5..5000).into_par_iter().map(|i| i * i).collect();
        let serial: Vec<usize> = (5..5000).map(|i| i * i).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn map_init_reuses_state_within_chunks() {
        // The scratch must be cleared by the closure, as the force pipeline
        // does; count distinct initializations to prove per-chunk reuse.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let n = 10_000;
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.clear();
                    scratch.push(i);
                    scratch[0]
                },
            )
            .collect();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        // One init per pulled chunk: far fewer than one per item.
        let distinct = inits.load(Ordering::Relaxed);
        assert!(
            distinct <= super::current_num_threads() * 8 + 1,
            "scratch must be reused across items: {distinct} inits"
        );
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjointly() {
        let mut data = vec![0u64; 4096];
        data.par_chunks_mut(256).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 256) as u64 + 1);
        }
    }

    #[test]
    fn tiny_inputs_run_inline() {
        let v = [1, 2, 3];
        let out: Vec<i32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = Vec::<i32>::new().par_iter().map(|&x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..1000usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        // An outer region whose items each open an inner region: the inner
        // calls run inline (on pool workers and on the submitting thread)
        // instead of re-entering the one-job-at-a-time pool.
        let out: Vec<usize> = (0..256usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..256usize).into_par_iter().map(|j| i + j).collect();
                inner.iter().sum::<usize>()
            })
            .collect();
        for (i, &s) in out.iter().enumerate() {
            assert_eq!(s, 256 * i + 255 * 256 / 2);
        }
    }

    #[test]
    fn concurrent_top_level_calls_from_many_threads_serialize_safely() {
        // Independent user threads (mpisim rank threads, the test harness)
        // submitting simultaneously must queue on the pool, not deadlock or
        // corrupt each other's chunk accounting.
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let v: Vec<u64> = (0..4096usize)
                        .into_par_iter()
                        .map(|i| i as u64 * (t + 1))
                        .collect();
                    v.iter().sum::<u64>()
                })
            })
            .collect();
        let expected = 4095u64 * 4096 / 2;
        for (t, h) in handles.into_iter().enumerate() {
            let sum = h.join().expect("submitting thread panicked");
            assert_eq!(sum, expected * (t as u64 + 1));
        }
    }

    #[test]
    fn pool_survives_a_panicking_region() {
        // A panic inside one region must propagate to its caller and leave
        // the pool reusable for the next region.
        let result = std::panic::catch_unwind(|| {
            (0..10_000usize).into_par_iter().for_each(|i| {
                if i == 7777 {
                    panic!("injected");
                }
            });
        });
        assert!(result.is_err(), "the panic must propagate");
        let doubled: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_state_count_is_bounded_by_workers_times_chunks() {
        // The satellite contract: one init per pulled chunk, so the number
        // of distinct states never exceeds the chunk count (itself ~8x the
        // worker count) regardless of how the pool schedules them.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let n = 50_000usize;
        let chunk = n.div_ceil(super::current_num_threads() * 8).max(16);
        let n_chunks = n.div_ceil(chunk);
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |_, i| i,
            )
            .collect();
        assert_eq!(out.len(), n);
        let distinct = inits.load(Ordering::Relaxed);
        assert!(
            distinct <= n_chunks,
            "states ({distinct}) must be bounded by chunks ({n_chunks})"
        );
    }
}
