//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness: a short warm-up estimates the per-iteration
//! cost, then a measurement phase of at least `sample_size` iterations (and
//! at least ~100 ms) reports mean ns/iter and, when a throughput was
//! declared, elements/second. No statistics, plots, or state directories.
//!
//! Beyond the upstream API, every finished measurement is also pushed to a
//! process-wide registry: bench mains drain it with [`take_records`] and
//! persist a `BENCH_*.json` trajectory artifact via [`write_artifact`], so
//! criterion-style benches leave the same perf breadcrumbs the hand-rolled
//! harnesses do.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// One finished measurement, captured by the results registry.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full bench name (`group/bench` or `group/name/param`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drain every record measured since the last call.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().unwrap())
}

/// Minimal JSON string escape for bench names (quotes and backslashes;
/// names are plain identifiers in practice).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write `records` as a JSON trajectory artifact:
/// `{"records": [{"name": ..., "ns_per_iter": ..., "iters": ...}, ...]}`.
pub fn write_artifact(path: &std::path::Path, records: &[BenchRecord]) {
    write_artifact_with_metrics(path, records, &[]);
}

/// [`write_artifact`] plus top-level scalar metrics alongside the records
/// array: `{"records": [...], "some_ratio": 1.23, ...}`. This is how
/// record-format benches expose *gated* machine-independent ratios
/// (measured within one run) to the bench-regression gate, which only
/// tracks named top-level scalars — plain records stay informational.
pub fn write_artifact_with_metrics(
    path: &std::path::Path,
    records: &[BenchRecord],
    metrics: &[(&str, f64)],
) {
    let mut json = String::from("{\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}}}{}\n",
            escape(&r.name),
            r.ns_per_iter,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    for (name, value) in metrics {
        json.push_str(&format!(",\n  \"{}\": {value:.6}", escape(name)));
    }
    json.push_str("\n}\n");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures and accumulates total time and iteration count.
pub struct Bencher {
    iters_done: u64,
    elapsed_ns: f64,
    target_iters: u64,
}

impl Bencher {
    /// Time `f` adaptively: warm up, then measure `target_iters` (or enough
    /// iterations to fill ~100 ms, whichever is more).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate single-iteration cost.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().as_secs_f64().max(1e-9);
        let budget_iters = (0.1 / once).ceil() as u64;
        let iters = self.target_iters.max(budget_iters.clamp(1, 1_000_000));

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
        self.iters_done = iters;
    }
}

/// Shared measurement + reporting for groups and ad-hoc benches.
fn run_bench(
    full_name: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    run: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed_ns: 0.0,
        target_iters: sample_size,
    };
    run(&mut b);
    if b.iters_done == 0 {
        println!("bench {full_name:<40} (no iterations run)");
        return;
    }
    let ns_per_iter = b.elapsed_ns / b.iters_done as f64;
    RECORDS.lock().unwrap().push(BenchRecord {
        name: full_name.to_string(),
        ns_per_iter,
        iters: b.iters_done,
    });
    let thrpt = match throughput {
        Some(Throughput::Elements(e)) => {
            let per_sec = e as f64 / (ns_per_iter * 1e-9);
            format!("  thrpt: {:.3} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (ns_per_iter * 1e-9);
            format!("  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "bench {full_name:<40} time: {:>12.1} ns/iter  ({} iters){thrpt}",
        ns_per_iter, b.iters_done
    );
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_bench(name, 10, None, &mut f);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label, 10, None, &mut |b| f(b, input));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_bench(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut ran = 0u64;
        run_bench("smoke", 5, Some(Throughput::Elements(10)), &mut |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 5);
    }

    #[test]
    fn records_registry_captures_and_serializes_measurements() {
        let _ = take_records(); // drain concurrent test noise
        run_bench("artifact/\"quoted\"", 3, None, &mut |b| {
            b.iter(|| black_box(1 + 1))
        });
        let records: Vec<BenchRecord> = take_records()
            .into_iter()
            .filter(|r| r.name.starts_with("artifact/"))
            .collect();
        assert_eq!(records.len(), 1);
        assert!(records[0].ns_per_iter >= 0.0);
        assert!(records[0].iters >= 3);
        let dir = std::env::temp_dir().join("criterion_shim_artifact_test.json");
        write_artifact(&dir, &records);
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.contains("\"records\""));
        assert!(body.contains("artifact/\\\"quoted\\\""), "escaped: {body}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("walk", 100).label, "walk/100");
        assert_eq!(BenchmarkId::from_parameter("64k").label, "64k");
    }

    #[test]
    fn artifact_metrics_land_as_top_level_scalars() {
        let records = vec![BenchRecord {
            name: "g/b".into(),
            ns_per_iter: 12.5,
            iters: 7,
        }];
        let dir = std::env::temp_dir().join("criterion_shim_metrics_test.json");
        write_artifact_with_metrics(&dir, &records, &[("conv_gflops_ratio", 39.25)]);
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.contains("\"records\""));
        assert!(
            body.contains("\"conv_gflops_ratio\": 39.250000"),
            "metric missing: {body}"
        );
        // Still one JSON object: metrics sit after the records array.
        assert_eq!(body.matches('{').count(), 2, "{body}");
        let _ = std::fs::remove_file(&dir);
    }
}
