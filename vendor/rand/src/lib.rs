//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the exact API surface the workspace uses from rand 0.8:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` (half-open ranges), and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and fast; it is *not* the upstream StdRng (ChaCha12), so
//! seeded streams differ from the real crate, which is fine for simulation
//! initial conditions and tests that only need reproducibility.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seed deterministically from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The random-number-generation extension trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` over its standard domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample in a half-open range `low..high`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_range(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    };
}
float_range!(f64);
float_range!(f32);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span never exceeds u64.
                let span = span as u64;
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                let off = (m >> 64) as u64;
                ((self.start as i128) + off as i128) as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i64);
int_range!(i32);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpoint serialization.
        /// Not part of the upstream `rand` API (ChaCha12 state is opaque);
        /// the offline shim exposes it so simulations can restart their
        /// random streams exactly where a snapshot left them.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&v));
            let i = rng.gen_range(0..13usize);
            assert!(i < 13);
        }
        // Integer samples hit every bucket of a small range.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_references_compose() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let via_ref = takes_generic(&mut rng);
        assert!((0.0..1.0).contains(&via_ref));
        let r = &mut rng;
        let nested: f64 = r.gen();
        assert!((0.0..1.0).contains(&nested));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
