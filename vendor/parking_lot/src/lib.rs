//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Differences from std that this shim papers over, matching parking_lot:
//! `Mutex::lock` returns the guard directly (poisoning is swallowed — a
//! panicked holder does not poison the data for mailbox queues), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming the guard.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard for [`Mutex`]; holds the std guard in an `Option` so a condvar
/// wait can temporarily take it.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable whose `wait` reborrows the guard.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn condvar_wait_wakes_on_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*shared;
        *lock.lock() = true;
        cv.notify_all();
        assert_eq!(waiter.join().unwrap(), 42);
    }
}
